// HopiIndex: the paper's connection index.
//
// Wraps a 2-hop cover over the element-level graph of an XML collection
// and offers reachability / distance / ancestor / descendant queries plus
// the incremental maintenance operations of Section 6. The index holds a
// mutable pointer to its collection: maintenance operations sequence the
// collection mutation and the label updates themselves, because the
// deletion algorithms need the graph both before and after the change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "collection/collection.h"
#include "twohop/reverse_index.h"
#include "util/result.h"

namespace hopi {

/// Outcome of a document deletion, for the Sec 7.3 experiments.
struct DeleteStats {
  bool separated = false;        // Theorem-2 fast path applied
  double separation_test_seconds = 0.0;
  double total_seconds = 0.0;
  /// Size of the partially recomputed closure region (Theorem 3 only),
  /// as a fraction of all elements. Paper: up to 5% for hub documents.
  double recompute_fraction = 0.0;
};

class HopiIndex {
 public:
  /// Takes a cover previously built by hopi::BuildIndex (global element
  /// ids) and the collection it indexes.
  HopiIndex(collection::Collection* collection, twohop::TwoHopCover cover,
            bool with_distance);

  // ---- queries ----

  /// True iff u ->* v in the element-level graph (reflexive).
  bool IsReachable(NodeId u, NodeId v) const {
    return cover_.cover().IsConnected(u, v);
  }

  /// Shortest path length u -> v, or nullopt when unconnected.
  /// Exact only for distance-aware indexes.
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const {
    return cover_.cover().Distance(u, v);
  }

  /// All strict descendants of u (the wildcard // axis), sorted.
  std::vector<NodeId> Descendants(NodeId u) const {
    return cover_.Descendants(u);
  }

  /// All strict ancestors of u, sorted.
  std::vector<NodeId> Ancestors(NodeId u) const { return cover_.Ancestors(u); }

  const twohop::TwoHopCover& cover() const { return cover_.cover(); }
  const twohop::IndexedCover& indexed_cover() const { return cover_; }
  bool with_distance() const { return with_distance_; }
  uint64_t CoverSize() const { return cover_.cover().Size(); }
  collection::Collection* collection() const { return collection_; }

  // ---- incremental maintenance (paper Sec 6) ----
  //
  // All maintenance operations mutate labels in place and must never
  // run concurrently with queries on the same index. The serving
  // integration is snapshot-based (engine/snapshot.h): keep a private
  // maintenance index, apply the Sec 6 operations to it, then
  // BackendSnapshot::Freeze() a deep copy and EnginePool::Swap() it in
  // — readers finish on the old snapshot while new requests see the
  // updated one.

  /// Inserts a new element-level link (u, v) into the collection AND the
  /// index (Sec 6.1: v becomes the center for all new connections).
  Status InsertLink(NodeId u, NodeId v);

  /// Indexes a document that was just ingested into the collection but is
  /// not yet covered by the index (Sec 6.1: treat the document as a new
  /// partition, then merge each of its cross links).
  Status InsertDocument(collection::DocId doc);

  /// Deletes a document from the collection and the index (Sec 6.2).
  /// Applies the Theorem-2 fast path when the document separates the
  /// document-level graph, the general Theorem-3 algorithm otherwise.
  Status DeleteDocument(collection::DocId doc, DeleteStats* stats = nullptr);

  /// Deletes a single link (Sec 6.2's "similar algorithm").
  Status DeleteLink(NodeId u, NodeId v);

  /// Replaces a document wholesale (Sec 6.3: drop + reinsert). `doc` is
  /// deleted; the replacement must already be ingested under a new DocId.
  Status ReplaceDocument(collection::DocId old_doc,
                         collection::DocId new_doc);

  /// True iff removing `doc` disconnects every document-level
  /// ancestor/descendant pair (the Theorem-2 precondition). Exposed for
  /// the maintenance bench.
  bool SeparatesDocumentGraph(collection::DocId doc) const;

  // ---- rebuild advisory (paper Sec 6 intro) ----
  //
  // "Over time, the space efficiency of the 2-hop cover that HOPI
  // maintains may degrade. Then occasional rebuilds of the index may be
  // considered, using the efficient algorithm presented in Section 4."

  /// Cover entries per element now vs. at construction time. 1.0 = as
  /// compact as the original build; grows as incremental updates add
  /// redundant centers.
  double DegradationFactor() const;

  /// True when the per-element label density has grown past `threshold`
  /// times the density at build time — the cue to rebuild via BuildIndex.
  bool ShouldRebuild(double threshold = 2.0) const {
    return DegradationFactor() >= threshold;
  }

 private:
  /// Sec 3.3 / Fig 2: merge one link into the cover with v as the center
  /// for all newly created connections.
  void MergeLink(NodeId u, NodeId v);

  Status DeleteDocumentFast(collection::DocId doc);
  Status DeleteDocumentGeneral(collection::DocId doc, DeleteStats* stats);

  collection::Collection* collection_;
  twohop::IndexedCover cover_;
  bool with_distance_;
  // Label density (entries per live element) right after construction;
  // denominator of DegradationFactor().
  double density_at_build_ = 0.0;
};

}  // namespace hopi
