// Materialized transitive-closure index — the comparison baseline.
//
// The paper reports compression as (closure connections) / (cover
// entries): storing the closure in the database takes two integers per
// connection plus two more for the backward index, exactly like the
// LIN/LOUT tables take per label entry (Sec 3.4 / Sec 7.2). This adapter
// provides the query API of HopiIndex on top of the materialized closure
// so the micro-benchmarks can compare like for like.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/closure.h"
#include "graph/digraph.h"

namespace hopi {

class TransitiveClosureIndex {
 public:
  /// Materializes the closure of `g` (and distances when requested).
  static TransitiveClosureIndex Build(const Digraph& g, bool with_distance);

  bool IsReachable(NodeId u, NodeId v) const;
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const;
  std::vector<NodeId> Descendants(NodeId u) const;
  std::vector<NodeId> Ancestors(NodeId u) const;

  uint64_t NumConnections() const { return connections_; }

  /// Integers needed to store this index in the paper's database layout
  /// (forward + backward index, two integers each per connection).
  uint64_t StorageIntegers() const { return 4 * connections_; }

 private:
  TransitiveClosureIndex() = default;

  TransitiveClosure closure_;
  std::optional<DistanceClosure> distances_;
  uint64_t connections_ = 0;
};

}  // namespace hopi
