// Index construction pipeline (paper Sec 3.3 + Sec 4).
//
// Orchestrates: document-level partitioning -> per-partition 2-hop covers
// (optionally with preselected link-target centers, Sec 4.2) -> cover
// joining (old incremental or new recursive algorithm). A non-partitioned
// "global" mode computes one cover for the whole element-level graph (the
// paper's 45-hour baseline — only feasible for small collections).
#pragma once

#include <cstddef>
#include <cstdint>

#include "collection/collection.h"
#include "hopi/index.h"
#include "hopi/join.h"
#include "partition/partitioner.h"
#include "twohop/builder.h"
#include "util/result.h"

namespace hopi {

enum class JoinAlgorithm {
  kIncremental,  // Sec 3.3 (EDBT 2004) — the paper's baseline
  kRecursive,    // Sec 4.1 — the new PSG-based algorithm
};

struct IndexBuildOptions {
  /// Partitioning strategy and caps (ignored when `global`).
  partition::PartitionOptions partition;
  JoinAlgorithm join = JoinAlgorithm::kRecursive;
  /// Sec 4.2: preselect cross-partition link targets as center nodes when
  /// building partition covers.
  bool preselect_link_targets = false;
  /// Sec 5: build a distance-aware index.
  bool with_distance = false;
  /// Skip partitioning entirely (one global cover).
  bool global = false;
  /// Sec 4.1: recursively partition the PSG when it exceeds this many
  /// nodes (0 = always traverse it whole).
  uint64_t psg_partition_cap = 0;
  /// Total thread budget for the covers phase. Partition covers are
  /// independent ("all these computations can be done concurrently",
  /// Sec 4.1) and run over a shared pool; when there are fewer
  /// partitions than threads, the leftover budget moves *inside* the
  /// largest partitions' cover builds (speculative candidate
  /// evaluation, see twohop::CoverBuildOptions::num_threads), so the
  /// fattest partition no longer caps the phase at single-thread speed.
  /// In `global` mode the whole budget goes to the one cover build.
  /// The built index is identical for every value.
  size_t num_threads = 1;
};

struct IndexBuildStats {
  double partition_seconds = 0.0;
  double covers_seconds = 0.0;
  double join_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t num_partitions = 0;
  uint64_t cross_links = 0;
  uint64_t cover_entries = 0;  // |L| of the final cover
  uint64_t total_partition_connections = 0;  // sum of partition |T|
  uint64_t largest_partition_connections = 0;
  twohop::CoverBuildStats cover_build;  // aggregated over partitions
  JoinStats join_stats;
};

/// Builds a HOPI index over the collection's live documents.
Result<HopiIndex> BuildIndex(collection::Collection* collection,
                             const IndexBuildOptions& options = {},
                             IndexBuildStats* stats = nullptr);

}  // namespace hopi
