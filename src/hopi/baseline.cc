#include "hopi/baseline.h"

#include <cassert>

namespace hopi {

TransitiveClosureIndex TransitiveClosureIndex::Build(const Digraph& g,
                                                     bool with_distance) {
  TransitiveClosureIndex index;
  auto tc = TransitiveClosure::Build(g);
  assert(tc.ok());
  index.closure_ = std::move(tc).value();
  index.connections_ = index.closure_.NumConnections();
  if (with_distance) index.distances_ = DistanceClosure::Build(g);
  return index;
}

bool TransitiveClosureIndex::IsReachable(NodeId u, NodeId v) const {
  return closure_.Contains(u, v);
}

std::optional<uint32_t> TransitiveClosureIndex::Distance(NodeId u,
                                                         NodeId v) const {
  if (distances_) return distances_->Dist(u, v);
  return closure_.Contains(u, v) ? std::optional<uint32_t>(0) : std::nullopt;
}

std::vector<NodeId> TransitiveClosureIndex::Descendants(NodeId u) const {
  return closure_.Descendants(u);
}

std::vector<NodeId> TransitiveClosureIndex::Ancestors(NodeId u) const {
  return closure_.Ancestors(u);
}

}  // namespace hopi
