#include "net/service.h"

#include <chrono>
#include <utility>

namespace hopi::net {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The percentile block every endpoint reports.
void AppendLatencyJson(std::string* out,
                       const LatencyHistogram::Snapshot& snapshot) {
  *out += "{\"count\":" + std::to_string(snapshot.count);
  *out += ",\"mean_us\":" + JsonNumber(snapshot.Mean());
  *out += ",\"p50_us\":" + std::to_string(snapshot.ValueAtQuantile(0.50));
  *out += ",\"p90_us\":" + std::to_string(snapshot.ValueAtQuantile(0.90));
  *out += ",\"p99_us\":" + std::to_string(snapshot.ValueAtQuantile(0.99));
  *out += ",\"p999_us\":" + std::to_string(snapshot.ValueAtQuantile(0.999));
  *out += '}';
}

}  // namespace

ReachabilityService::ReachabilityService(engine::EnginePool* pool,
                                         WireLimits limits)
    : pool_(pool), sharded_(nullptr), wire_(limits) {}

ReachabilityService::ReachabilityService(engine::ShardedEngine* sharded,
                                         WireLimits limits)
    : pool_(nullptr), sharded_(sharded), wire_(limits) {}

HttpServer::Handler ReachabilityService::AsHandler() {
  return [this](HttpRequest request, HttpServer::Responder responder) {
    Handle(std::move(request), std::move(responder));
  };
}

void ReachabilityService::BindServerStats(std::function<ServerStats()> source) {
  server_stats_ = std::move(source);
}

void ReachabilityService::Handle(HttpRequest request,
                                 HttpServer::Responder responder) {
  const uint64_t started_us = NowMicros();
  // Route on the path alone; a query string is accepted and ignored.
  std::string_view path = request.target;
  if (size_t q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);
  }

  const bool is_get = request.method == "GET" || request.method == "HEAD";
  if (path == "/healthz") {
    healthz_.requests.fetch_add(1, std::memory_order_relaxed);
    if (!is_get) {
      SendError(&healthz_, responder, 405,
                Status::InvalidArgument("use GET /healthz"), started_us);
      return;
    }
    SendOk(&healthz_, responder, "{\"status\":\"ok\"}", started_us);
    return;
  }
  if (path == "/stats") {
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    if (!is_get) {
      SendError(&stats_, responder, 405,
                Status::InvalidArgument("use GET /stats"), started_us);
      return;
    }
    SendOk(&stats_, responder, StatsJson(), started_us);
    return;
  }
  if (path == "/v1/batch") {
    batch_.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      SendError(&batch_, responder, 405,
                Status::InvalidArgument("use POST /v1/batch"), started_us);
      return;
    }
    HandleBatch(std::move(request), std::move(responder));
    return;
  }
  if (path == "/v1/mutate") {
    mutate_.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      SendError(&mutate_, responder, 405,
                Status::InvalidArgument("use POST /v1/mutate"), started_us);
      return;
    }
    HandleMutate(std::move(request), std::move(responder));
    return;
  }
  if (path == "/v1/path") {
    path_.requests.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      SendError(&path_, responder, 405,
                Status::InvalidArgument("use POST /v1/path"), started_us);
      return;
    }
    HandlePath(std::move(request), std::move(responder));
    return;
  }
  // Unrouted: book it under /stats-free accounting (healthz_ would
  // pollute liveness numbers; a dedicated endpoint is overkill).
  HttpResponse response;
  response.status = 404;
  response.body = JsonWire::SerializeError(
      Status::NotFound("no route for " + std::string(path)));
  responder.Send(std::move(response));
}

void ReachabilityService::HandleBatch(HttpRequest&& request,
                                      HttpServer::Responder&& responder) {
  const uint64_t started_us = NowMicros();
  // Base ∪ delta: ids created by buffered mutations are probeable.
  const uint64_t num_elements = sharded_ ? sharded_->ServingElementCount()
                                         : pool_->ServingElementCount();
  Result<engine::BatchRequest> parsed =
      wire_.ParseBatchRequest(request.body, num_elements);
  if (!parsed.ok()) {
    SendError(&batch_, responder, parsed.status(), started_us);
    return;
  }
  if (sharded_) {
    // The merge callback runs on a shard completion thread (or the
    // watchdog): serialize there and let the Responder carry the bytes
    // back to the IO thread — same shape as the pool path below.
    Status submitted = sharded_->SubmitBatch(
        std::move(parsed).value(),
        [this, responder, started_us](engine::ShardedBatchResponse response) {
          SendOk(&batch_, responder,
                 JsonWire::SerializeShardedBatchResponse(response), started_us);
        });
    if (!submitted.ok()) {
      SendError(&batch_, responder, submitted, started_us);
    }
    return;
  }
  // The callback runs on a serving worker: serialize there (cheap) and
  // let the Responder carry the bytes back to the IO thread.
  Status submitted = pool_->SubmitBatch(
      std::move(parsed).value(),
      [this, responder, started_us](Result<engine::PoolBatchResponse> result) {
        if (!result.ok()) {
          SendError(&batch_, responder, result.status(), started_us);
          return;
        }
        SendOk(&batch_, responder,
               JsonWire::SerializeBatchResponse(result.value()), started_us);
      });
  if (!submitted.ok()) {
    SendError(&batch_, responder, submitted, started_us);
  }
}

void ReachabilityService::HandlePath(HttpRequest&& request,
                                     HttpServer::Responder&& responder) {
  const uint64_t started_us = NowMicros();
  Result<engine::PathQueryRequest> parsed =
      wire_.ParsePathRequest(request.body);
  if (!parsed.ok()) {
    SendError(&path_, responder, parsed.status(), started_us);
    return;
  }
  // The sharded engine's SubmitQuery has the pool's exact callback
  // contract, so both modes share one completion lambda.
  auto submit = [this](engine::PathQueryRequest req,
                       std::function<void(Result<engine::PoolPathResponse>)>
                           on_done) {
    return sharded_ ? sharded_->SubmitQuery(std::move(req), std::move(on_done))
                    : pool_->SubmitQuery(std::move(req), std::move(on_done));
  };
  Status submitted = submit(
      std::move(parsed).value(),
      [this, responder, started_us](Result<engine::PoolPathResponse> result) {
        if (!result.ok()) {
          SendError(&path_, responder, result.status(), started_us);
          return;
        }
        if (!result.value().result.ok()) {
          // The pool ran it, the query itself failed (bad expression,
          // budget): same error envelope, pool provenance dropped.
          SendError(&path_, responder, result.value().result.status(),
                    started_us);
          return;
        }
        SendOk(&path_, responder,
               JsonWire::SerializePathResponse(result.value()), started_us);
      });
  if (!submitted.ok()) {
    SendError(&path_, responder, submitted, started_us);
  }
}

void ReachabilityService::HandleMutate(HttpRequest&& request,
                                       HttpServer::Responder&& responder) {
  const uint64_t started_us = NowMicros();
  if (sharded_) {
    SendError(&mutate_, responder,
              Status::Unsupported(
                  "mutation is not supported in sharded serving"),
              started_us);
    return;
  }
  if (!mutations_enabled_) {
    SendError(&mutate_, responder,
              Status::Unsupported(
                  "mutation endpoint disabled (start with --mutate=1)"),
              started_us);
    return;
  }
  Result<engine::Mutation> parsed = wire_.ParseMutationRequest(
      request.body, pool_->ServingElementCount(),
      pool_->ServingDocumentCount());
  if (!parsed.ok()) {
    SendError(&mutate_, responder, parsed.status(), started_us);
    return;
  }
  // Synchronous on the IO thread (see EnableMutations' doc comment):
  // writers are serialized in the pool either way, and a validated op
  // is a small Sec-6 label merge, not a build.
  Result<engine::MutationReceipt> receipt =
      pool_->ApplyMutation(parsed.value());
  if (!receipt.ok()) {
    SendError(&mutate_, responder, receipt.status(), started_us);
    return;
  }
  SendOk(&mutate_, responder,
         JsonWire::SerializeMutationReceipt(receipt.value()), started_us);
}

void ReachabilityService::SendError(Endpoint* endpoint,
                                    const HttpServer::Responder& responder,
                                    const Status& status, uint64_t started_us) {
  SendError(endpoint, responder, JsonWire::HttpStatusFor(status), status,
            started_us);
}

void ReachabilityService::SendError(Endpoint* endpoint,
                                    const HttpServer::Responder& responder,
                                    int http_status, const Status& status,
                                    uint64_t started_us) {
  endpoint->errors.fetch_add(1, std::memory_order_relaxed);
  if (status.IsResourceExhausted()) {
    endpoint->sheds.fetch_add(1, std::memory_order_relaxed);
  }
  endpoint->latency.Record(NowMicros() - started_us);
  HttpResponse response;
  response.status = http_status;
  response.body = JsonWire::SerializeError(status);
  if (http_status == 429) {
    // Sheds clear as soon as the pool drains below the low watermark;
    // tell well-behaved clients to come right back.
    response.extra_headers.emplace_back("retry-after", "1");
  }
  responder.Send(std::move(response));
}

void ReachabilityService::SendOk(Endpoint* endpoint,
                                 const HttpServer::Responder& responder,
                                 std::string body, uint64_t started_us) {
  endpoint->latency.Record(NowMicros() - started_us);
  HttpResponse response;
  response.body = std::move(body);
  responder.Send(std::move(response));
}

std::string ReachabilityService::StatsJson() const {
  if (sharded_) return ShardedStatsJson();
  engine::PoolStats pool = pool_->Stats();
  std::string out = "{\"pool\":{";
  out += "\"batches\":" + std::to_string(pool.batches);
  out += ",\"path_queries\":" + std::to_string(pool.path_queries);
  out += ",\"probes\":" + std::to_string(pool.probes);
  out += ",\"cache_hits\":" + std::to_string(pool.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(pool.cache_misses);
  out += ",\"backend_probes\":" + std::to_string(pool.backend_probes);
  out += ",\"swaps\":" + std::to_string(pool.swaps);
  out += ",\"rebinds\":" + std::to_string(pool.rebinds);
  out += ",\"sheds\":" + std::to_string(pool.sheds);
  out += ",\"queued\":" + std::to_string(pool.queued);
  out += ",\"executing\":" + std::to_string(pool.executing);
  out += std::string(",\"shedding\":") + (pool.shedding ? "true" : "false");
  out += ",\"snapshot_version\":" + std::to_string(pool.snapshot_version);
  out += ",\"workers\":" + std::to_string(pool_->num_threads());
  out += '}';
  out += ",\"overlay\":{";
  out += "\"mutations\":" + std::to_string(pool.mutations);
  out += ",\"mutation_failures\":" + std::to_string(pool.mutation_failures);
  out += ",\"delta_ops\":" + std::to_string(pool.delta_ops);
  out += ",\"delta_generation\":" + std::to_string(pool.delta_generation);
  out += ",\"probes\":" + std::to_string(pool.overlay_probes);
  out += ",\"base_hits\":" + std::to_string(pool.overlay_base_hits);
  out += ",\"bfs_fallbacks\":" + std::to_string(pool.overlay_bfs_fallbacks);
  out += ",\"budget_exhaustions\":" +
         std::to_string(pool.overlay_budget_exhaustions);
  out += ",\"parallel_expansions\":" +
         std::to_string(pool.overlay_parallel_expansions);
  out += ",\"rebuilds\":" + std::to_string(pool.rebuilds);
  out += ",\"last_rebuild_pause_us\":" +
         std::to_string(pool.last_rebuild_pause_us);
  out += ",\"degradation\":" + JsonNumber(pool.degradation);
  out += '}';
  AppendServerAndEndpoints(&out);
  return out;
}

std::string ReachabilityService::ShardedStatsJson() const {
  engine::ShardStats stats = sharded_->Stats();
  std::string out = "{\"sharded\":{";
  out += "\"shards\":" + std::to_string(sharded_->num_shards());
  out += std::string(",\"with_distance\":") +
         (sharded_->with_distance() ? "true" : "false");
  out += ",\"batches\":" + std::to_string(stats.batches);
  out += ",\"direct_pairs\":" + std::to_string(stats.direct_pairs);
  out += ",\"cross_pairs\":" + std::to_string(stats.cross_pairs);
  out += ",\"routeless_pairs\":" + std::to_string(stats.routeless_pairs);
  out += ",\"subbatches\":" + std::to_string(stats.subbatches);
  out += ",\"leg_probes\":" + std::to_string(stats.leg_probes);
  out += ",\"partial_batches\":" + std::to_string(stats.partial_batches);
  out += ",\"failed_subbatches\":" + std::to_string(stats.failed_subbatches);
  out += ",\"merges\":" + std::to_string(stats.merges);
  out += ",\"merge_latency_us_total\":" +
         std::to_string(stats.merge_latency_us_total);
  out += ",\"merge_latency_us_max\":" +
         std::to_string(stats.merge_latency_us_max);
  out += ",\"per_shard_probes\":[";
  for (size_t s = 0; s < stats.per_shard_probes.size(); ++s) {
    if (s > 0) out += ',';
    out += std::to_string(stats.per_shard_probes[s]);
  }
  out += "],\"fanout_histogram\":[";
  for (size_t b = 0; b < stats.fanout_histogram.size(); ++b) {
    if (b > 0) out += ',';
    out += std::to_string(stats.fanout_histogram[b]);
  }
  out += "]}";
  AppendServerAndEndpoints(&out);
  return out;
}

void ReachabilityService::AppendServerAndEndpoints(std::string* out) const {
  if (server_stats_) {
    ServerStats server = server_stats_();
    *out += ",\"server\":{";
    *out += "\"connections_accepted\":" +
            std::to_string(server.connections_accepted);
    *out += ",\"connections_refused\":" +
            std::to_string(server.connections_refused);
    *out += ",\"connections_closed\":" +
            std::to_string(server.connections_closed);
    *out += ",\"open_connections\":" + std::to_string(server.open_connections);
    *out += ",\"requests\":" + std::to_string(server.requests);
    *out += ",\"responses\":" + std::to_string(server.responses);
    *out += ",\"parse_errors\":" + std::to_string(server.parse_errors);
    *out += '}';
  }
  *out += ",\"endpoints\":{";
  const struct {
    const char* name;
    const Endpoint* endpoint;
  } kEndpoints[] = {{"batch", &batch_},
                    {"path", &path_},
                    {"mutate", &mutate_},
                    {"stats", &stats_},
                    {"healthz", &healthz_}};
  bool first = true;
  for (const auto& [name, endpoint] : kEndpoints) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    *out += name;
    *out += "\":{\"requests\":" +
            std::to_string(endpoint->requests.load(std::memory_order_relaxed));
    *out += ",\"errors\":" +
            std::to_string(endpoint->errors.load(std::memory_order_relaxed));
    *out += ",\"sheds\":" +
            std::to_string(endpoint->sheds.load(std::memory_order_relaxed));
    *out += ",\"latency_us\":";
    AppendLatencyJson(out, endpoint->latency.TakeSnapshot());
    *out += '}';
  }
  *out += "}}";
}

}  // namespace hopi::net
