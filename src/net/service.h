// ReachabilityService: the HTTP-facing application layer over an
// EnginePool.
//
// One class owns the route table and the request lifecycle:
//
//   POST /v1/batch  -> JsonWire::ParseBatchRequest -> pool SubmitBatch
//   POST /v1/path   -> JsonWire::ParsePathRequest  -> pool SubmitQuery
//   POST /v1/mutate -> JsonWire::ParseMutationRequest
//                      -> pool ApplyMutation (gated by EnableMutations;
//                      501 when the write path is off)
//   GET  /stats     -> pool + server counters, gauges, latency
//                      percentiles (answered inline)
//   GET  /healthz   -> liveness (answered inline)
//
// Engine requests use the pool's callback submission: the handler
// returns to the epoll loop immediately and the serving worker's
// on_done serializes the result and fires the Responder — no thread
// ever blocks on a query. Shedding falls out of the same path: a
// refused submission (ResourceExhausted from the admission gate or a
// full lane) is answered 429 right from the handler, which is exactly
// why an overloaded server keeps answering /stats and 429s instead of
// stalling accepts.
//
// Per-endpoint log-bucketed latency histograms (microseconds, handler
// entry to response send) feed the /stats percentiles the bench and
// the overload tests read back.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engine/engine_pool.h"
#include "engine/sharded_engine.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/stats.h"
#include "util/status.h"

namespace hopi::net {

class ReachabilityService {
 public:
  /// `pool` must outlive the service (and the server routing into it).
  explicit ReachabilityService(engine::EnginePool* pool,
                               WireLimits limits = {});

  /// Sharded mode (hopi_serve --shards=N): the same routes served by a
  /// ShardedEngine. /v1/batch answers carry the "resolved" mask and
  /// per-shard snapshot versions; a partial merge (deadline, failed
  /// shard) still answers 200 with "partial_error", matching the
  /// single-pool partial-result convention. /v1/mutate answers 501 —
  /// the sharded write path does not exist yet. `sharded` must outlive
  /// the service.
  explicit ReachabilityService(engine::ShardedEngine* sharded,
                               WireLimits limits = {});

  /// The HttpServer handler. Bind with
  ///   HttpServer server(service.AsHandler(), options);
  HttpServer::Handler AsHandler();

  /// Opens POST /v1/mutate. Call it after arming the pool's write path
  /// (EnginePool::EnableMutations); until then the route answers 501
  /// Unsupported. ApplyMutation runs synchronously on the IO thread —
  /// acceptable because one validated op is microseconds of Sec-6
  /// maintenance, and serializing writers is the pool's contract
  /// anyway.
  void EnableMutations() { mutations_enabled_ = true; }

  /// Lets /stats include transport counters; typically
  ///   service.BindServerStats([&] { return server.Stats(); });
  /// Unset, the "server" section is omitted.
  void BindServerStats(std::function<ServerStats()> source);

  /// The /stats response body (also handy for tests and the tool's
  /// periodic report).
  std::string StatsJson() const;

 private:
  struct Endpoint {
    LatencyHistogram latency;  // microseconds, entry to Send
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};  // non-2xx answers
    std::atomic<uint64_t> sheds{0};   // the 429 subset of errors
  };

  std::string ShardedStatsJson() const;
  void AppendServerAndEndpoints(std::string* out) const;

  void Handle(HttpRequest request, HttpServer::Responder responder);
  void HandleBatch(HttpRequest&& request, HttpServer::Responder&& responder);
  void HandlePath(HttpRequest&& request, HttpServer::Responder&& responder);
  void HandleMutate(HttpRequest&& request, HttpServer::Responder&& responder);

  /// Answers with the JsonWire error mapping and books the endpoint
  /// counters. `started_us` is the handler-entry timestamp.
  void SendError(Endpoint* endpoint, const HttpServer::Responder& responder,
                 const Status& status, uint64_t started_us);
  /// Same, with the HTTP status forced (405 has no Status analogue).
  void SendError(Endpoint* endpoint, const HttpServer::Responder& responder,
                 int http_status, const Status& status, uint64_t started_us);
  void SendOk(Endpoint* endpoint, const HttpServer::Responder& responder,
              std::string body, uint64_t started_us);

  // Exactly one of the two engines is set; every handler branches on
  // `sharded_` being null.
  engine::EnginePool* pool_;
  engine::ShardedEngine* sharded_;
  JsonWire wire_;
  std::function<ServerStats()> server_stats_;
  bool mutations_enabled_ = false;  // set once before serving starts

  Endpoint batch_;
  Endpoint path_;
  Endpoint mutate_;
  Endpoint stats_;
  Endpoint healthz_;
};

}  // namespace hopi::net
