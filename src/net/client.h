// BlockingHttpClient: the minimal keep-alive HTTP/1.1 client the
// end-to-end tests and the closed-loop load bench drive the server
// with. Deliberately synchronous — one outstanding request per client,
// blocking socket IO — because the bench's closed-loop arrival model
// IS "N clients each waiting for their previous response", and tests
// want linear control flow. Not a general client: Content-Length
// responses only (which is all our server emits).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace hopi::net {

/// One parsed response. Header names lowercased, like HttpRequest.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool close = false;  ///< server asked to close after this response

  const std::string* FindHeader(std::string_view name_lower) const;
};

class BlockingHttpClient {
 public:
  BlockingHttpClient() = default;
  ~BlockingHttpClient();

  BlockingHttpClient(BlockingHttpClient&& other) noexcept;
  BlockingHttpClient& operator=(BlockingHttpClient&& other) noexcept;
  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

  /// Connects (blocking) to host:port. IOError on failure.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Writes one request and blocks for its response. The connection is
  /// kept alive across calls unless the server says close (then it is
  /// closed here; Connect again to continue). A body is sent with
  /// Content-Length; GET with empty body sends none.
  Result<ClientResponse> Request(std::string_view method,
                                 std::string_view target,
                                 std::string_view body = {});

  /// Raw-bytes escape hatch for protocol tests: write exactly `bytes`.
  Status SendRaw(std::string_view bytes);
  /// Reads whatever the server answers until it closes the connection
  /// (for tests sending malformed input, where the server always
  /// closes).
  Result<std::string> ReadUntilClose();

 private:
  Result<ClientResponse> ReadResponse();

  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace hopi::net
