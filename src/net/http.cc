#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace hopi::net {
namespace {

bool IsTokenChar(unsigned char c) {
  // RFC 9110 tchar.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Case-insensitive membership in a comma-separated token list
/// ("Connection: keep-alive, TE").
bool ListContains(std::string_view list, std::string_view token_lower) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    std::string_view item = comma == std::string_view::npos
                                ? list.substr(pos)
                                : list.substr(pos, comma - pos);
    if (ToLower(Trim(item)) == token_lower) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::Feed(std::string_view bytes) {
  if (poisoned_) return;  // connection is being torn down anyway
  // Compact before growing: the consumed prefix is dead weight.
  if (consumed_ > 0 && (consumed_ == buffer_.size() || consumed_ > 65536)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

HttpParser::Step HttpParser::Poison(int http_status, std::string why,
                                    HttpError* error) {
  poisoned_ = true;
  error->http_status = http_status;
  error->status = Status::InvalidArgument(std::move(why));
  return Step::kError;
}

HttpParser::Step HttpParser::Next(HttpRequest* out, HttpError* error) {
  if (poisoned_) {
    error->http_status = 400;
    error->status = Status::FailedPrecondition("parser already failed");
    return Step::kError;
  }
  if (!in_body_) {
    Step head = ParseHead(out, error);
    if (head != Step::kRequest) return head;  // kNeedMore or kError
    // Fall through: head parsed into pending_, body may be complete.
  }
  if (BufferedBytes() < body_remaining_) return Step::kNeedMore;
  pending_.body.assign(buffer_, consumed_, body_remaining_);
  consumed_ += body_remaining_;
  body_remaining_ = 0;
  in_body_ = false;
  *out = std::move(pending_);
  pending_ = HttpRequest{};
  return Step::kRequest;
}

HttpParser::Step HttpParser::ParseHead(HttpRequest* out, HttpError* error) {
  (void)out;
  std::string_view view(buffer_);
  view = view.substr(consumed_);
  size_t head_end = view.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (view.size() > limits_.max_header_bytes) {
      return Poison(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes", error);
    }
    return Step::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return Poison(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes",
                  error);
  }
  std::string_view head = view.substr(0, head_end);
  consumed_ += head_end + 4;

  HttpRequest request;

  // ---- request line: METHOD SP TARGET SP HTTP/1.x ----
  size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return Poison(400, "malformed request line", error);
  }
  std::string_view method = line.substr(0, sp1);
  for (unsigned char c : method) {
    if (!IsTokenChar(c)) return Poison(400, "invalid method token", error);
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return Poison(400, "malformed request line", error);
  }
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  for (unsigned char c : target) {
    if (c <= ' ' || c == 0x7F) {
      return Poison(400, "invalid request target", error);
    }
  }
  std::string_view version = line.substr(sp2 + 1);
  if (version.size() != 8 || !version.starts_with("HTTP/1.") ||
      (version[7] != '0' && version[7] != '1')) {
    if (version.starts_with("HTTP/")) {
      return Poison(505, "unsupported HTTP version", error);
    }
    return Poison(400, "malformed request line", error);
  }
  request.method.assign(method);
  request.target.assign(target);
  request.version_minor = version[7] - '0';

  // ---- header fields ----
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string_view field = eol == std::string_view::npos
                                 ? head.substr(pos)
                                 : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    if (field.empty()) return Poison(400, "empty header field", error);
    if (field[0] == ' ' || field[0] == '\t') {
      // Deprecated obs-fold continuation: refusing is the RFC 7230
      // MUST-level option for servers.
      return Poison(400, "obsolete line folding", error);
    }
    size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Poison(400, "header field without ':'", error);
    }
    std::string_view name = field.substr(0, colon);
    for (unsigned char c : name) {
      if (!IsTokenChar(c)) {
        // Space before ':' included — request smuggling classic.
        return Poison(400, "invalid header name", error);
      }
    }
    std::string_view value = Trim(field.substr(colon + 1));
    for (unsigned char c : value) {
      if (c < 0x20 && c != '\t') {
        return Poison(400, "control byte in header value", error);
      }
    }
    if (request.headers.size() >= limits_.max_headers) {
      return Poison(431, "more than " + std::to_string(limits_.max_headers) +
                             " headers", error);
    }
    request.headers.emplace_back(ToLower(name), std::string(value));
  }

  // ---- framing ----
  if (request.FindHeader("transfer-encoding") != nullptr) {
    return Poison(501, "Transfer-Encoding not implemented", error);
  }
  size_t content_length = 0;
  bool have_length = false;
  for (const auto& [name, value] : request.headers) {
    if (name != "content-length") continue;
    if (value.empty() || value.size() > 18) {
      return Poison(400, "bad Content-Length", error);
    }
    size_t parsed = 0;
    for (char c : value) {
      if (c < '0' || c > '9') return Poison(400, "bad Content-Length", error);
      parsed = parsed * 10 + static_cast<size_t>(c - '0');
    }
    if (have_length && parsed != content_length) {
      return Poison(400, "conflicting Content-Length headers", error);
    }
    content_length = parsed;
    have_length = true;
  }
  if (content_length > limits_.max_body_bytes) {
    return Poison(413, "body of " + std::to_string(content_length) +
                           " bytes exceeds limit of " +
                           std::to_string(limits_.max_body_bytes), error);
  }

  // ---- connection semantics ----
  request.keep_alive = request.version_minor >= 1;
  if (const std::string* conn = request.FindHeader("connection")) {
    if (ListContains(*conn, "close")) request.keep_alive = false;
    if (request.version_minor == 0 && ListContains(*conn, "keep-alive")) {
      request.keep_alive = true;
    }
  }

  if (const std::string* expect = request.FindHeader("expect")) {
    if (content_length > 0 && ListContains(*expect, "100-continue")) {
      continue_needed_ = true;
    }
  }

  pending_ = std::move(request);
  body_remaining_ = content_length;
  in_body_ = true;
  return Step::kRequest;  // head complete; caller checks the body next
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += HttpStatusText(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "content-type: " + response.content_type + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  if (response.close) out += "connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace hopi::net
