// HTTP/1.1 request parsing and response serialization — transport-
// neutral and allocation-bounded.
//
// HttpParser is a push parser: the epoll loop (net/server.h) Feeds it
// whatever bytes arrived and asks for complete requests; the parser
// never blocks, never reads a socket, and never grows past its
// configured limits, which makes it both the unit under the seeded
// malformed-input fuzzer (tests/wire_fuzz_test.cc) and trivially
// reusable by tests without any networking. Errors are typed: every
// reject carries the HTTP status the transport should answer before
// closing (400 bad syntax, 413 oversized body, 431 oversized headers,
// 501 unimplemented transfer-encoding, 505 unsupported version).
//
// Scope: the subset a JSON API server needs. Content-Length bodies
// only (Transfer-Encoding is refused with 501, never mis-framed),
// CRLF line endings, no obs-fold continuation headers, no trailers.
// Pipelined requests are supported — parsed bytes beyond the first
// request stay buffered until the next Next() call.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hopi::net {

struct HttpParserLimits {
  /// Request line + header block, in bytes (431 beyond).
  size_t max_header_bytes = 16 * 1024;
  /// Header count (431 beyond).
  size_t max_headers = 64;
  /// Content-Length bound (413 beyond).
  size_t max_body_bytes = 8u << 20;
};

/// One parsed request. Header names are lowercased at parse time
/// (HTTP headers are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics already resolved against the version
  /// defaults: 1.1 keep-alive unless "Connection: close", 1.0 close
  /// unless "Connection: keep-alive".
  bool keep_alive = true;

  /// First header named `name_lower` (must be given lowercased), or
  /// nullptr.
  const std::string* FindHeader(std::string_view name_lower) const;
};

/// A typed parse reject: what to answer, and why.
struct HttpError {
  int http_status = 400;
  Status status = Status::OK();
};

/// Incremental request parser. One instance per connection; not
/// thread-safe. After an error the parser is poisoned (the connection
/// is answered and closed — there is no way to resynchronize a broken
/// byte stream).
class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {});

  /// Appends raw connection bytes. Cheap; parsing happens in Next().
  void Feed(std::string_view bytes);

  enum class Step {
    kNeedMore,  ///< No complete request buffered yet.
    kRequest,   ///< *out holds the next request.
    kError,     ///< *error describes the reject; parser is poisoned.
  };

  /// Extracts the next complete request, FIFO across pipelined input.
  Step Next(HttpRequest* out, HttpError* error);

  /// Bytes currently buffered (unconsumed input).
  size_t BufferedBytes() const { return buffer_.size() - consumed_; }

  /// True once after a head with "Expect: 100-continue" was parsed and
  /// its body is still outstanding — the transport should write the
  /// interim "HTTP/1.1 100 Continue" response. Clears on read.
  bool TakeContinueNeeded() {
    bool needed = continue_needed_;
    continue_needed_ = false;
    return needed;
  }

 private:
  Step Poison(int http_status, std::string why, HttpError* error);
  Step ParseHead(HttpRequest* out, HttpError* error);

  HttpParserLimits limits_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
  bool continue_needed_ = false;
  // Head parsed, waiting for body bytes.
  bool in_body_ = false;
  size_t body_remaining_ = 0;
  HttpRequest pending_;
};

/// One response, serialized by SerializeResponse. `close` emits
/// "Connection: close" (the transport closes after writing).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close = false;
  /// Extra headers appended verbatim (e.g. {"retry-after", "1"}).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Serializes status line + headers + body. Content-Length is always
/// emitted (the framing the parser on the other side relies on).
std::string SerializeResponse(const HttpResponse& response);

/// Reason phrase for the handful of statuses the server emits;
/// "Unknown" otherwise.
std::string_view HttpStatusText(int status);

}  // namespace hopi::net
