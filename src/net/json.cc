#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hopi::net {
namespace {

/// Recursive-descent parser over a fixed text span. All positions are
/// byte offsets into the original input so error messages point at the
/// offending byte.
class Parser {
 public:
  Parser(std::string_view text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    HOPI_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after the JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status CountElement() {
    if (++elements_ > limits_.max_elements) {
      return Status::InvalidArgument(
          "JSON error: document exceeds " +
          std::to_string(limits_.max_elements) + " container elements");
    }
    return Status::OK();
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    if (depth > limits_.max_depth) {
      return Fail("nesting deeper than " + std::to_string(limits_.max_depth));
    }
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        HOPI_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        HOPI_RETURN_NOT_OK(Expect("true"));
        *out = JsonValue(true);
        return Status::OK();
      case 'f':
        HOPI_RETURN_NOT_OK(Expect("false"));
        *out = JsonValue(false);
        return Status::OK();
      case 'n':
        HOPI_RETURN_NOT_OK(Expect("null"));
        *out = JsonValue(nullptr);
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = JsonValue(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key string");
      std::string key;
      HOPI_RETURN_NOT_OK(ParseString(&key));
      for (const auto& [existing, _] : members) {
        if (existing == key) return Fail("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':' after key");
      ++pos_;
      JsonValue value;
      HOPI_RETURN_NOT_OK(CountElement());
      HOPI_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        *out = JsonValue(std::move(members));
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    ++pos_;  // '['
    JsonValue::Array items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = JsonValue(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      HOPI_RETURN_NOT_OK(CountElement());
      HOPI_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        *out = JsonValue(std::move(items));
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      int d = HexDigit(text_[pos_ + i]);
      if (d < 0) return Fail("bad hex digit in \\u escape");
      value = value * 16 + static_cast<uint32_t>(d);
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (AtEnd()) return Fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          HOPI_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            HOPI_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // int part: 0 | [1-9][0-9]*
    if (AtEnd() || !IsDigit(Peek())) return Fail("invalid number");
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && IsDigit(Peek())) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !IsDigit(Peek())) return Fail("digits required after '.'");
      while (!AtEnd() && IsDigit(Peek())) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !IsDigit(Peek())) return Fail("digits required in exponent");
      while (!AtEnd() && IsDigit(Peek())) ++pos_;
    }
    // The span was validated against the JSON grammar, so strtod
    // consumes exactly it (a NUL-terminated copy keeps strtod off the
    // unterminated string_view).
    std::string span(text_.substr(start, pos_ - start));
    double value = std::strtod(span.c_str(), nullptr);
    if (!std::isfinite(value)) return Fail("number overflows double");
    *out = JsonValue(value);
    return Status::OK();
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  const JsonParseLimits& limits_;
  size_t pos_ = 0;
  size_t elements_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseLimits& limits) {
  return Parser(text, limits).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no NaN/Inf
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace hopi::net
