// Strict, dependency-free JSON for the wire layer.
//
// The serving front-end speaks a hand-rolled JSON wire format
// (docs/WIRE_FORMAT.md); this header is its foundation: a small
// recursive-descent parser producing a JsonValue tree, and escaping
// helpers for the writer side. The parser is deliberately strict —
// RFC 8259 grammar only, no comments, no trailing commas, no NaN/Inf,
// full-input consumption, bounded nesting depth — because every byte
// arriving here crossed a network boundary: anything malformed must
// become a typed InvalidArgument (HTTP 400), never UB or an accepted
// approximation. The corruption fuzzer (tests/wire_fuzz_test.cc)
// enforces exactly that under ASan/UBSan.
//
// Object members keep their textual order in a flat vector (like
// BenchReport): lookups are O(members), which is fine for the wire
// format's handful of keys, and order preservation makes serialization
// deterministic. Duplicate keys are rejected — a request whose meaning
// depends on which duplicate wins is a smuggling vector, not a client.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.h"

namespace hopi::net {

struct JsonParseLimits {
  /// Maximum container nesting (objects + arrays). The wire format
  /// needs 3; the default leaves headroom without letting "[[[[..."
  /// recurse the stack away.
  size_t max_depth = 32;
  /// Maximum total container elements (array items + object members)
  /// across the document — a flat-bomb bound independent of body size
  /// limits.
  size_t max_elements = 1u << 20;
};

/// One parsed JSON value. kNumber is double throughout (the wire
/// format's integers — node ids, counts — are all well under 2^53).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Precondition: the matching is_*() holds.
  bool AsBool() const { return std::get<bool>(value_); }
  double AsNumber() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }

  /// First member named `key`, or nullptr. Precondition: is_object().
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [name, value] : AsObject()) {
      if (name == key) return &value;
    }
    return nullptr;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parses exactly one JSON document covering all of `text` (leading /
/// trailing RFC whitespace tolerated). InvalidArgument on any
/// violation, with a byte offset in the message.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseLimits& limits = {});

// ---- writer-side helpers (serializers build strings directly) ----

/// Appends `s` as a quoted, escaped JSON string. Control characters go
/// out as \u00XX; bytes >= 0x80 are passed through (the wire format is
/// UTF-8 end to end).
void AppendJsonString(std::string* out, std::string_view s);

/// Shortest round-trip decimal for `v` ("%.17g" trimmed via "%g"
/// laddering is overkill here: "%.10g" is exact for the integral
/// values the wire emits and plenty for latency millis).
std::string JsonNumber(double v);

}  // namespace hopi::net
