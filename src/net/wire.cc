#include "net/wire.h"

#include <cmath>
#include <utility>

namespace hopi::net {
namespace {

/// Extracts a non-negative integer field (JSON numbers are double;
/// the wire's integers must be integral and fit `max`).
Status GetUint(const JsonValue& v, std::string_view field, uint64_t max,
               uint64_t* out) {
  if (!v.is_number()) {
    return Status::InvalidArgument(std::string(field) + " must be a number");
  }
  double d = v.AsNumber();
  if (d < 0 || d > static_cast<double>(max) || d != std::floor(d)) {
    return Status::InvalidArgument(std::string(field) +
                                   " must be an integer in [0, " +
                                   std::to_string(max) + "]");
  }
  *out = static_cast<uint64_t>(d);
  return Status::OK();
}

Status GetBool(const JsonValue& v, std::string_view field, bool* out) {
  if (!v.is_bool()) {
    return Status::InvalidArgument(std::string(field) + " must be a boolean");
  }
  *out = v.AsBool();
  return Status::OK();
}

}  // namespace

Result<engine::BatchRequest> JsonWire::ParseBatchRequest(
    std::string_view body, uint64_t num_elements) const {
  HOPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body, limits_.json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* pairs = root.Find("pairs");
  if (pairs == nullptr || !pairs->is_array()) {
    return Status::InvalidArgument("\"pairs\" must be an array of [u, v]");
  }
  engine::BatchRequest request;
  if (pairs->AsArray().size() > limits_.max_pairs) {
    return Status::InvalidArgument(
        "\"pairs\" has " + std::to_string(pairs->AsArray().size()) +
        " entries; the wire limit is " + std::to_string(limits_.max_pairs));
  }
  if (!pairs->AsArray().empty() && num_elements == 0) {
    return Status::InvalidArgument("the serving collection has no elements");
  }
  request.pairs.reserve(pairs->AsArray().size());
  for (const JsonValue& pair : pairs->AsArray()) {
    if (!pair.is_array() || pair.AsArray().size() != 2) {
      return Status::InvalidArgument(
          "every \"pairs\" entry must be a two-element array [u, v]");
    }
    uint64_t u = 0;
    uint64_t v = 0;
    HOPI_RETURN_NOT_OK(
        GetUint(pair.AsArray()[0], "pair source", num_elements - 1, &u));
    HOPI_RETURN_NOT_OK(
        GetUint(pair.AsArray()[1], "pair target", num_elements - 1, &v));
    request.pairs.push_back(
        {static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "pairs") continue;
    if (key == "want_distances") {
      HOPI_RETURN_NOT_OK(GetBool(value, key, &request.want_distances));
      continue;
    }
    return Status::InvalidArgument("unknown field \"" + key + "\"");
  }
  return request;
}

Result<engine::PathQueryRequest> JsonWire::ParsePathRequest(
    std::string_view body) const {
  HOPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body, limits_.json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* expression = root.Find("expression");
  if (expression == nullptr || !expression->is_string()) {
    return Status::InvalidArgument("\"expression\" must be a string");
  }
  if (expression->AsString().size() > limits_.max_expression_bytes) {
    return Status::InvalidArgument(
        "\"expression\" longer than " +
        std::to_string(limits_.max_expression_bytes) + " bytes");
  }
  engine::PathQueryRequest request;
  request.expression = expression->AsString();
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "expression") continue;
    if (key == "max_matches") {
      uint64_t n = 0;
      HOPI_RETURN_NOT_OK(GetUint(value, key, limits_.max_matches, &n));
      request.max_matches = static_cast<size_t>(n);
    } else if (key == "max_step_distance") {
      uint64_t n = 0;
      HOPI_RETURN_NOT_OK(GetUint(value, key, UINT32_MAX, &n));
      request.max_step_distance = static_cast<uint32_t>(n);
    } else if (key == "min_tag_similarity") {
      if (!value.is_number() || value.AsNumber() < 0.0 ||
          value.AsNumber() > 1.0) {
        return Status::InvalidArgument(
            "\"min_tag_similarity\" must be a number in [0, 1]");
      }
      request.min_tag_similarity = value.AsNumber();
    } else if (key == "count_only") {
      HOPI_RETURN_NOT_OK(GetBool(value, key, &request.count_only));
    } else {
      return Status::InvalidArgument("unknown field \"" + key + "\"");
    }
  }
  return request;
}

std::string JsonWire::SerializeBatchResponse(
    const engine::PoolBatchResponse& response) {
  const engine::BatchResponse& batch = response.batch;
  std::string out = "{\"reachable\":[";
  for (size_t i = 0; i < batch.reachable.size(); ++i) {
    if (i > 0) out += ',';
    out += batch.reachable[i] ? "true" : "false";
  }
  out += ']';
  if (!batch.distances.empty()) {
    out += ",\"distances\":[";
    for (size_t i = 0; i < batch.distances.size(); ++i) {
      if (i > 0) out += ',';
      if (batch.distances[i].has_value()) {
        out += std::to_string(*batch.distances[i]);
      } else {
        out += "null";
      }
    }
    out += ']';
  }
  out += ",\"snapshot_version\":" + std::to_string(response.snapshot_version);
  out += ",\"worker\":" + std::to_string(response.worker);
  out += ",\"stats\":{\"probes\":" + std::to_string(batch.stats.probes);
  out += ",\"unique_probes\":" + std::to_string(batch.stats.unique_probes);
  out += ",\"cache_hits\":" + std::to_string(batch.stats.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(batch.stats.cache_misses);
  out += ",\"labels_borrowed\":" + std::to_string(batch.stats.labels_borrowed);
  out += "}";
  if (!batch.error.ok()) {
    out += ",\"partial_error\":";
    out += SerializeError(batch.error);
  }
  out += '}';
  return out;
}

std::string JsonWire::SerializePathResponse(
    const engine::PoolPathResponse& response) {
  const engine::PathQueryResponse& path = response.result.value();
  std::string out = "{\"count\":" + std::to_string(path.count);
  out += ",\"matches\":[";
  for (size_t i = 0; i < path.matches.size(); ++i) {
    const query::PathMatch& match = path.matches[i];
    if (i > 0) out += ',';
    out += "{\"bindings\":[";
    for (size_t j = 0; j < match.bindings.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(match.bindings[j]);
    }
    out += "],\"total_distance\":" + std::to_string(match.total_distance);
    out += ",\"score\":" + JsonNumber(match.score);
    out += '}';
  }
  out += "],\"snapshot_version\":" + std::to_string(response.snapshot_version);
  out += ",\"worker\":" + std::to_string(response.worker);
  out += '}';
  return out;
}

std::string JsonWire::SerializeError(const Status& status) {
  std::string out = "{\"error\":{\"code\":";
  AppendJsonString(&out, StatusCodeName(status.code()));
  out += ",\"message\":";
  AppendJsonString(&out, status.message());
  out += "}}";
  return out;
}

int JsonWire::HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kFailedPrecondition:
      return 503;
    case StatusCode::kUnsupported:
      return 501;
    case StatusCode::kOutOfBudget:
      return 503;
    case StatusCode::kCorruption:
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

}  // namespace hopi::net
