#include "net/wire.h"

#include <cmath>
#include <utility>

namespace hopi::net {
namespace {

/// Extracts a non-negative integer field (JSON numbers are double;
/// the wire's integers must be integral and fit `max`).
Status GetUint(const JsonValue& v, std::string_view field, uint64_t max,
               uint64_t* out) {
  if (!v.is_number()) {
    return Status::InvalidArgument(std::string(field) + " must be a number");
  }
  double d = v.AsNumber();
  if (d < 0 || d > static_cast<double>(max) || d != std::floor(d)) {
    return Status::InvalidArgument(std::string(field) +
                                   " must be an integer in [0, " +
                                   std::to_string(max) + "]");
  }
  *out = static_cast<uint64_t>(d);
  return Status::OK();
}

Status GetBool(const JsonValue& v, std::string_view field, bool* out) {
  if (!v.is_bool()) {
    return Status::InvalidArgument(std::string(field) + " must be a boolean");
  }
  *out = v.AsBool();
  return Status::OK();
}

}  // namespace

Result<engine::BatchRequest> JsonWire::ParseBatchRequest(
    std::string_view body, uint64_t num_elements) const {
  HOPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body, limits_.json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* pairs = root.Find("pairs");
  if (pairs == nullptr || !pairs->is_array()) {
    return Status::InvalidArgument("\"pairs\" must be an array of [u, v]");
  }
  engine::BatchRequest request;
  if (pairs->AsArray().size() > limits_.max_pairs) {
    return Status::InvalidArgument(
        "\"pairs\" has " + std::to_string(pairs->AsArray().size()) +
        " entries; the wire limit is " + std::to_string(limits_.max_pairs));
  }
  if (!pairs->AsArray().empty() && num_elements == 0) {
    return Status::InvalidArgument("the serving collection has no elements");
  }
  request.pairs.reserve(pairs->AsArray().size());
  for (const JsonValue& pair : pairs->AsArray()) {
    if (!pair.is_array() || pair.AsArray().size() != 2) {
      return Status::InvalidArgument(
          "every \"pairs\" entry must be a two-element array [u, v]");
    }
    uint64_t u = 0;
    uint64_t v = 0;
    HOPI_RETURN_NOT_OK(
        GetUint(pair.AsArray()[0], "pair source", num_elements - 1, &u));
    HOPI_RETURN_NOT_OK(
        GetUint(pair.AsArray()[1], "pair target", num_elements - 1, &v));
    request.pairs.push_back(
        {static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "pairs") continue;
    if (key == "want_distances") {
      HOPI_RETURN_NOT_OK(GetBool(value, key, &request.want_distances));
      continue;
    }
    return Status::InvalidArgument("unknown field \"" + key + "\"");
  }
  return request;
}

Result<engine::PathQueryRequest> JsonWire::ParsePathRequest(
    std::string_view body) const {
  HOPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body, limits_.json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* expression = root.Find("expression");
  if (expression == nullptr || !expression->is_string()) {
    return Status::InvalidArgument("\"expression\" must be a string");
  }
  if (expression->AsString().size() > limits_.max_expression_bytes) {
    return Status::InvalidArgument(
        "\"expression\" longer than " +
        std::to_string(limits_.max_expression_bytes) + " bytes");
  }
  engine::PathQueryRequest request;
  request.expression = expression->AsString();
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "expression") continue;
    if (key == "max_matches") {
      uint64_t n = 0;
      HOPI_RETURN_NOT_OK(GetUint(value, key, limits_.max_matches, &n));
      request.max_matches = static_cast<size_t>(n);
    } else if (key == "max_step_distance") {
      uint64_t n = 0;
      HOPI_RETURN_NOT_OK(GetUint(value, key, UINT32_MAX, &n));
      request.max_step_distance = static_cast<uint32_t>(n);
    } else if (key == "min_tag_similarity") {
      if (!value.is_number() || value.AsNumber() < 0.0 ||
          value.AsNumber() > 1.0) {
        return Status::InvalidArgument(
            "\"min_tag_similarity\" must be a number in [0, 1]");
      }
      request.min_tag_similarity = value.AsNumber();
    } else if (key == "count_only") {
      HOPI_RETURN_NOT_OK(GetBool(value, key, &request.count_only));
    } else {
      return Status::InvalidArgument("unknown field \"" + key + "\"");
    }
  }
  return request;
}

Result<engine::Mutation> JsonWire::ParseMutationRequest(
    std::string_view body, uint64_t num_elements,
    uint64_t num_documents) const {
  HOPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body, limits_.json));
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* op = root.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("\"op\" must be a string");
  }
  const std::string& kind = op->AsString();

  // Per-op field whitelists: anything else is an unknown field, the
  // same strictness as the batch/path parsers.
  auto check_fields = [&](std::initializer_list<std::string_view> allowed)
      -> Status {
    for (const auto& [key, value] : root.AsObject()) {
      (void)value;
      if (key == "op") continue;
      bool known = false;
      for (std::string_view a : allowed) known = known || key == a;
      if (!known) {
        return Status::InvalidArgument("unknown field \"" + key + "\"");
      }
    }
    return Status::OK();
  };
  auto require_uint = [&](const char* field, uint64_t max,
                          uint64_t* out) -> Status {
    const JsonValue* v = root.Find(field);
    if (v == nullptr) {
      return Status::InvalidArgument(std::string("\"") + field +
                                     "\" is required");
    }
    return GetUint(*v, field, max, out);
  };

  if (kind == "insert_link" || kind == "delete_link") {
    HOPI_RETURN_NOT_OK(check_fields({"source", "target"}));
    if (num_elements == 0) {
      return Status::InvalidArgument("the serving collection has no elements");
    }
    uint64_t u = 0;
    uint64_t v = 0;
    HOPI_RETURN_NOT_OK(require_uint("source", num_elements - 1, &u));
    HOPI_RETURN_NOT_OK(require_uint("target", num_elements - 1, &v));
    return kind == "insert_link"
               ? engine::Mutation::InsertLink(static_cast<NodeId>(u),
                                              static_cast<NodeId>(v))
               : engine::Mutation::DeleteLink(static_cast<NodeId>(u),
                                              static_cast<NodeId>(v));
  }
  if (kind == "insert_document") {
    HOPI_RETURN_NOT_OK(check_fields({"name", "elements"}));
    const JsonValue* name = root.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("\"name\" must be a string");
    }
    if (name->AsString().size() > limits_.max_name_bytes) {
      return Status::InvalidArgument(
          "\"name\" longer than " + std::to_string(limits_.max_name_bytes) +
          " bytes");
    }
    const JsonValue* elements = root.Find("elements");
    if (elements == nullptr || !elements->is_array()) {
      return Status::InvalidArgument("\"elements\" must be an array");
    }
    if (elements->AsArray().empty()) {
      return Status::InvalidArgument(
          "\"elements\" needs at least one element (the root)");
    }
    if (elements->AsArray().size() > limits_.max_document_elements) {
      return Status::InvalidArgument(
          "\"elements\" has " + std::to_string(elements->AsArray().size()) +
          " entries; the wire limit is " +
          std::to_string(limits_.max_document_elements));
    }
    std::vector<engine::NewElementSpec> specs;
    specs.reserve(elements->AsArray().size());
    for (size_t i = 0; i < elements->AsArray().size(); ++i) {
      const JsonValue& e = elements->AsArray()[i];
      if (!e.is_object()) {
        return Status::InvalidArgument(
            "every \"elements\" entry must be an object");
      }
      const JsonValue* tag = e.Find("tag");
      if (tag == nullptr || !tag->is_string()) {
        return Status::InvalidArgument("element \"tag\" must be a string");
      }
      if (tag->AsString().size() > limits_.max_name_bytes) {
        return Status::InvalidArgument(
            "element \"tag\" longer than " +
            std::to_string(limits_.max_name_bytes) + " bytes");
      }
      const JsonValue* parent = e.Find("parent");
      if (parent == nullptr) {
        return Status::InvalidArgument(
            "element \"parent\" is required (null for the root)");
      }
      engine::NewElementSpec spec;
      spec.tag = tag->AsString();
      if (parent->is_null()) {
        if (i != 0) {
          return Status::InvalidArgument(
              "only the first element (the root) may have a null parent");
        }
      } else {
        uint64_t p = 0;
        if (i == 0) {
          return Status::InvalidArgument(
              "the first element is the root and must have parent null");
        }
        HOPI_RETURN_NOT_OK(GetUint(*parent, "element parent", i - 1, &p));
        spec.parent = static_cast<uint32_t>(p);
      }
      for (const auto& [key, value] : e.AsObject()) {
        (void)value;
        if (key != "tag" && key != "parent") {
          return Status::InvalidArgument("unknown element field \"" + key +
                                         "\"");
        }
      }
      specs.push_back(std::move(spec));
    }
    return engine::Mutation::InsertDocument(name->AsString(),
                                            std::move(specs));
  }
  if (kind == "delete_document") {
    HOPI_RETURN_NOT_OK(check_fields({"doc"}));
    if (num_documents == 0) {
      return Status::InvalidArgument("the serving collection has no documents");
    }
    uint64_t d = 0;
    HOPI_RETURN_NOT_OK(require_uint("doc", num_documents - 1, &d));
    return engine::Mutation::DeleteDocument(
        static_cast<collection::DocId>(d));
  }
  return Status::InvalidArgument(
      "\"op\" must be one of insert_link, delete_link, insert_document, "
      "delete_document");
}

std::string JsonWire::SerializeMutationReceipt(
    const engine::MutationReceipt& receipt) {
  std::string out =
      "{\"applied\":true,\"generation\":" + std::to_string(receipt.generation);
  out += ",\"snapshot_version\":" + std::to_string(receipt.snapshot_version);
  if (receipt.doc != collection::kInvalidDoc) {
    out += ",\"doc\":" + std::to_string(receipt.doc);
    out += ",\"first_element\":" + std::to_string(receipt.first_element);
    out += ",\"num_elements\":" + std::to_string(receipt.num_elements);
  }
  out += '}';
  return out;
}

std::string JsonWire::SerializeBatchResponse(
    const engine::PoolBatchResponse& response) {
  const engine::BatchResponse& batch = response.batch;
  std::string out = "{\"reachable\":[";
  for (size_t i = 0; i < batch.reachable.size(); ++i) {
    if (i > 0) out += ',';
    out += batch.reachable[i] ? "true" : "false";
  }
  out += ']';
  if (!batch.distances.empty()) {
    out += ",\"distances\":[";
    for (size_t i = 0; i < batch.distances.size(); ++i) {
      if (i > 0) out += ',';
      if (batch.distances[i].has_value()) {
        out += std::to_string(*batch.distances[i]);
      } else {
        out += "null";
      }
    }
    out += ']';
  }
  out += ",\"snapshot_version\":" + std::to_string(response.snapshot_version);
  out += ",\"delta_generation\":" + std::to_string(response.delta_generation);
  out += ",\"worker\":" + std::to_string(response.worker);
  out += ",\"stats\":{\"probes\":" + std::to_string(batch.stats.probes);
  out += ",\"unique_probes\":" + std::to_string(batch.stats.unique_probes);
  out += ",\"cache_hits\":" + std::to_string(batch.stats.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(batch.stats.cache_misses);
  out += ",\"labels_borrowed\":" + std::to_string(batch.stats.labels_borrowed);
  out += "}";
  if (!batch.error.ok()) {
    out += ",\"partial_error\":";
    out += SerializeError(batch.error);
  }
  out += '}';
  return out;
}

std::string JsonWire::SerializeShardedBatchResponse(
    const engine::ShardedBatchResponse& response) {
  const engine::BatchResponse& batch = response.batch;
  std::string out = "{\"reachable\":[";
  for (size_t i = 0; i < batch.reachable.size(); ++i) {
    if (i > 0) out += ',';
    out += batch.reachable[i] ? "true" : "false";
  }
  out += ']';
  if (!batch.distances.empty()) {
    out += ",\"distances\":[";
    for (size_t i = 0; i < batch.distances.size(); ++i) {
      if (i > 0) out += ',';
      if (batch.distances[i].has_value()) {
        out += std::to_string(*batch.distances[i]);
      } else {
        out += "null";
      }
    }
    out += ']';
  }
  out += ",\"resolved\":[";
  for (size_t i = 0; i < response.resolved.size(); ++i) {
    if (i > 0) out += ',';
    out += response.resolved[i] ? "true" : "false";
  }
  out += "],\"shard_versions\":[";
  for (size_t i = 0; i < response.shard_versions.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(response.shard_versions[i]);
  }
  out += ']';
  out += ",\"stats\":{\"probes\":" + std::to_string(batch.stats.probes);
  out += ",\"unique_probes\":" + std::to_string(batch.stats.unique_probes);
  out += ",\"cache_hits\":" + std::to_string(batch.stats.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(batch.stats.cache_misses);
  out += ",\"labels_borrowed\":" + std::to_string(batch.stats.labels_borrowed);
  out += "}";
  if (!response.status.ok()) {
    out += ",\"partial_error\":";
    out += SerializeError(response.status);
  }
  out += '}';
  return out;
}

std::string JsonWire::SerializePathResponse(
    const engine::PoolPathResponse& response) {
  const engine::PathQueryResponse& path = response.result.value();
  std::string out = "{\"count\":" + std::to_string(path.count);
  out += ",\"matches\":[";
  for (size_t i = 0; i < path.matches.size(); ++i) {
    const query::PathMatch& match = path.matches[i];
    if (i > 0) out += ',';
    out += "{\"bindings\":[";
    for (size_t j = 0; j < match.bindings.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(match.bindings[j]);
    }
    out += "],\"total_distance\":" + std::to_string(match.total_distance);
    out += ",\"score\":" + JsonNumber(match.score);
    out += '}';
  }
  out += "],\"snapshot_version\":" + std::to_string(response.snapshot_version);
  out += ",\"delta_generation\":" + std::to_string(response.delta_generation);
  out += ",\"worker\":" + std::to_string(response.worker);
  out += '}';
  return out;
}

std::string JsonWire::SerializeError(const Status& status) {
  std::string out = "{\"error\":{\"code\":";
  AppendJsonString(&out, StatusCodeName(status.code()));
  out += ",\"message\":";
  AppendJsonString(&out, status.message());
  out += "}}";
  return out;
}

int JsonWire::HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kFailedPrecondition:
      return 503;
    case StatusCode::kUnsupported:
      return 501;
    case StatusCode::kOutOfBudget:
      return 503;
    case StatusCode::kCorruption:
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

}  // namespace hopi::net
