// JsonWire: the typed boundary between HTTP bodies and engine
// requests/responses.
//
// Parsing is strict and total: every request body either becomes a
// fully validated engine::BatchRequest / engine::PathQueryRequest or a
// typed InvalidArgument naming the offending field — node ids are
// range-checked against the serving collection, sizes against the wire
// limits, types against the schema. Serialization is deterministic
// (fixed field order) so responses are diffable across runs; the JSON
// schemas are documented byte-for-byte in docs/WIRE_FORMAT.md.
//
// HttpStatusFor is the single place the util::Status taxonomy maps to
// HTTP status codes — notably ResourceExhausted -> 429, the overload
// shedding contract the load bench and the admission tests assert on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/engine.h"
#include "engine/engine_pool.h"
#include "engine/sharded_engine.h"
#include "net/json.h"
#include "util/result.h"

namespace hopi::net {

struct WireLimits {
  /// Probe pairs per batch request.
  size_t max_pairs = 1u << 16;
  /// Path expression length in bytes.
  size_t max_expression_bytes = 4096;
  /// Materialized matches a path request may ask for.
  size_t max_matches = 1u << 16;
  /// Elements one insert_document mutation may create.
  size_t max_document_elements = 4096;
  /// Bytes of a mutation's document name or element tag.
  size_t max_name_bytes = 1024;
  JsonParseLimits json;
};

class JsonWire {
 public:
  explicit JsonWire(WireLimits limits = {}) : limits_(limits) {}

  const WireLimits& limits() const { return limits_; }

  /// Body schema: {"pairs": [[u, v], ...], "want_distances": bool?}.
  /// Node ids must be integers in [0, num_elements).
  Result<engine::BatchRequest> ParseBatchRequest(std::string_view body,
                                                 uint64_t num_elements) const;

  /// Body schema: {"expression": "//a//~b", "max_matches": n?,
  /// "max_step_distance": n?, "min_tag_similarity": x?,
  /// "count_only": bool?}.
  Result<engine::PathQueryRequest> ParsePathRequest(
      std::string_view body) const;

  /// Body schema (one op per request, discriminated by "op"):
  ///   {"op": "insert_link", "source": u, "target": v}
  ///   {"op": "delete_link", "source": u, "target": v}
  ///   {"op": "insert_document", "name": "...",
  ///    "elements": [{"tag": "...", "parent": null | index}, ...]}
  ///   {"op": "delete_document", "doc": d}
  /// Ids are range-checked against the SERVING counts (base ∪ delta);
  /// element parents are indices into the op's own "elements" array
  /// (the first element is the root and must have parent null). The
  /// deeper semantic checks (edge exists, document live, ...) happen in
  /// EnginePool::ApplyMutation — this layer is shape and range only.
  Result<engine::Mutation> ParseMutationRequest(std::string_view body,
                                                uint64_t num_elements,
                                                uint64_t num_documents) const;

  // ---- serializers (deterministic field order) ----

  static std::string SerializeBatchResponse(
      const engine::PoolBatchResponse& response);

  /// The sharded-serving twin: same "reachable"/"distances"/"stats"
  /// shape plus "resolved" (per-pair authority mask), "shard_versions"
  /// (the per-shard snapshot versions that answered), and
  /// "partial_error" when the merge degraded (deadline, failed shard).
  static std::string SerializeShardedBatchResponse(
      const engine::ShardedBatchResponse& response);

  /// Precondition: response.result.ok() (errors go through
  /// SerializeError at the service layer).
  static std::string SerializePathResponse(
      const engine::PoolPathResponse& response);

  /// {"applied":true,"generation":g,"snapshot_version":v} plus
  /// "doc"/"first_element"/"num_elements" for insert_document receipts.
  static std::string SerializeMutationReceipt(
      const engine::MutationReceipt& receipt);

  /// {"error": {"code": "ResourceExhausted", "message": "..."}}.
  static std::string SerializeError(const Status& status);

  /// The one Status -> HTTP mapping: InvalidArgument 400, NotFound 404,
  /// ResourceExhausted 429 (overload shed), FailedPrecondition 503
  /// (shutting down), Unsupported 501, everything else 500.
  static int HttpStatusFor(const Status& status);

 private:
  WireLimits limits_;
};

}  // namespace hopi::net
