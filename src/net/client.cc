#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace hopi::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const std::string* ClientResponse::FindHeader(
    std::string_view name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) return &value;
  }
  return nullptr;
}

BlockingHttpClient::~BlockingHttpClient() { Close(); }

BlockingHttpClient::BlockingHttpClient(BlockingHttpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

BlockingHttpClient& BlockingHttpClient::operator=(
    BlockingHttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void BlockingHttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status BlockingHttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address \"" + host + "\"");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("connect " + host + ":" + std::to_string(port));
    Close();
    return status;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status BlockingHttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> BlockingHttpClient::ReadUntilClose() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string out = std::move(buffer_);
  buffer_.clear();
  char buf[8192];
  while (true) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // ECONNRESET counts as close too: the refuse-over-capacity path
    // resets rather than FINs.
    break;
  }
  Close();
  return out;
}

Result<ClientResponse> BlockingHttpClient::Request(std::string_view method,
                                                   std::string_view target,
                                                   std::string_view body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string request;
  request.reserve(128 + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request += "host: hopi\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "content-type: application/json\r\n";
    request += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request.append(body);
  HOPI_RETURN_NOT_OK(SendRaw(request));
  Result<ClientResponse> response = ReadResponse();
  if (response.ok() && response.value().close) Close();
  return response;
}

Result<ClientResponse> BlockingHttpClient::ReadResponse() {
  auto fill = [&]() -> Status {
    char buf[8192];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) return Status::IOError("connection closed mid-response");
    if (errno == EINTR) return Status::OK();
    return Errno("read");
  };

  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    HOPI_RETURN_NOT_OK(fill());
  }
  std::string_view head(buffer_.data(), head_end);

  ClientResponse response;
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!status_line.starts_with("HTTP/1.") || status_line.size() < 12) {
    return Status::Corruption("malformed status line");
  }
  response.status = 0;
  for (size_t i = 9; i < 12; ++i) {
    char c = status_line[i];
    if (c < '0' || c > '9') return Status::Corruption("malformed status code");
    response.status = response.status * 10 + (c - '0');
  }

  size_t content_length = 0;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string_view field = eol == std::string_view::npos
                                 ? head.substr(pos)
                                 : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Status::Corruption("malformed response header");
    }
    std::string name = ToLower(Trim(field.substr(0, colon)));
    std::string value(Trim(field.substr(colon + 1)));
    if (name == "content-length") {
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::Corruption("bad content-length");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
    }
    if (name == "connection" && ToLower(value).find("close") !=
                                    std::string::npos) {
      response.close = true;
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  size_t body_start = head_end + 4;
  while (buffer_.size() - body_start < content_length) {
    HOPI_RETURN_NOT_OK(fill());
  }
  response.body.assign(buffer_, body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  return response;
}

}  // namespace hopi::net
