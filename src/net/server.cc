#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "net/wire.h"

namespace hopi::net {

namespace {

constexpr uint64_t kWakeConnId = 0;  // epoll user-data id of the eventfd
constexpr int kListenBacklog = 512;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

// ---- cross-thread mailbox ----

// Shared between one IO thread and everything that may post to it (the
// acceptor, Responders riding inside EnginePool callbacks). Responders
// hold it by shared_ptr so a completion that arrives after Stop() finds
// `stopped` set and is dropped without touching freed state.
struct HttpServer::Responder::IoQueue {
  std::mutex mu;
  bool stopped = false;                  // guarded by mu
  std::vector<int> new_fds;              // from the acceptor
  std::vector<std::pair<uint64_t, HttpResponse>> completions;
  int wake_fd = -1;  // eventfd; owned, closed with the queue

  ~IoQueue() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Wake() {
    uint64_t one = 1;
    // Best-effort: EAGAIN means the counter is already hot, which is a
    // wake-up in itself.
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
};

// ---- per-connection state (touched only by the owning IO thread) ----

struct HttpServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  HttpParser parser;
  std::string out;        // serialized bytes not yet written
  size_t out_off = 0;
  bool awaiting = false;  // a request is with the handler; reads paused
  bool keep_alive_after_response = true;
  bool close_after_write = false;
  bool want_read = true;   // current epoll interest
  bool want_write = false;

  explicit Conn(HttpParserLimits limits) : parser(limits) {}
};

struct HttpServer::IoLoop {
  int epoll_fd = -1;
  std::shared_ptr<Responder::IoQueue> queue;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  std::thread thread;

  ~IoLoop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
  }
};

// ---- Responder ----

HttpServer::Responder::Responder(std::shared_ptr<IoQueue> queue,
                                 uint64_t conn_id)
    : queue_(std::move(queue)),
      conn_id_(conn_id),
      sent_(std::make_shared<std::atomic<bool>>(false)) {}

void HttpServer::Responder::Send(HttpResponse response) const {
  if (sent_->exchange(true)) return;  // first Send wins
  {
    std::lock_guard<std::mutex> lock(queue_->mu);
    if (queue_->stopped) return;
    queue_->completions.emplace_back(conn_id_, std::move(response));
  }
  queue_->Wake();
}

// ---- lifecycle ----

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.num_io_threads == 0) options_.num_io_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Errno("bind " + options_.bind_address + ":" +
                          std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, kListenBacklog) < 0) {
    Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  bound_port_ = ntohs(bound.sin_port);

  acceptor_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (acceptor_wake_fd_ < 0) {
    Status status = Errno("eventfd");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  io_loops_.reserve(options_.num_io_threads);
  for (size_t i = 0; i < options_.num_io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->queue = std::make_shared<Responder::IoQueue>();
    loop->queue->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->queue->wake_fd < 0) {
      Status status = Errno("epoll_create1/eventfd");
      io_loops_.push_back(std::move(loop));  // let Stop() clean up
      Stop();
      return status;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeConnId;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->queue->wake_fd, &ev) <
        0) {
      Status status = Errno("epoll_ctl(wake)");
      io_loops_.push_back(std::move(loop));
      Stop();
      return status;
    }
    io_loops_.push_back(std::move(loop));
  }
  for (auto& loop : io_loops_) {
    IoLoop* raw = loop.get();
    loop->thread = std::thread([this, raw] { IoThreadLoop(raw); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) {
    // A second caller (or the destructor after an explicit Stop) just
    // waits for the first to have finished joining.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_wake_fd_ >= 0) {
    uint64_t bump = 1;
    [[maybe_unused]] ssize_t n =
        ::write(acceptor_wake_fd_, &bump, sizeof(bump));
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_wake_fd_ >= 0) {
    ::close(acceptor_wake_fd_);
    acceptor_wake_fd_ = -1;
  }
  for (auto& loop : io_loops_) {
    if (loop->queue != nullptr) {
      {
        std::lock_guard<std::mutex> lock(loop->queue->mu);
        loop->queue->stopped = true;
      }
      loop->queue->Wake();
    }
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Queues (and their eventfds) stay alive as long as any Responder
  // still holds them; stray fds posted after `stopped` are closed by
  // the poster.
  io_loops_.clear();
}

ServerStats HttpServer::Stats() const {
  ServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_refused = refused_.load(std::memory_order_relaxed);
  stats.connections_closed = closed_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.open_connections = open_.load(std::memory_order_relaxed);
  return stats;
}

// ---- acceptor ----

void HttpServer::AcceptorLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {acceptor_wake_fd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_acquire)) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // woken for shutdown
    while (true) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN: drained; anything else: retry on poll
      if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
        // Refuse over capacity: accepting and closing drains the SYN
        // backlog so clients see a prompt reset, not a hung handshake.
        refused_.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepted_.fetch_add(1, std::memory_order_relaxed);
      open_.fetch_add(1, std::memory_order_relaxed);
      size_t target =
          next_io_.fetch_add(1, std::memory_order_relaxed) % io_loops_.size();
      auto& queue = io_loops_[target]->queue;
      bool delivered = false;
      {
        std::lock_guard<std::mutex> lock(queue->mu);
        if (!queue->stopped) {
          queue->new_fds.push_back(fd);
          delivered = true;
        }
      }
      if (delivered) {
        queue->Wake();
      } else {
        ::close(fd);
        open_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
}

// ---- IO loop ----

void HttpServer::IoThreadLoop(IoLoop* loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool running = true;
  while (running) {
    int ready = ::epoll_wait(loop->epoll_fd, events, kMaxEvents, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeConnId) {
        // Drain the eventfd, then the mailbox.
        uint64_t counter = 0;
        while (::read(loop->queue->wake_fd, &counter, sizeof(counter)) > 0) {
        }
        std::vector<int> new_fds;
        std::vector<std::pair<uint64_t, HttpResponse>> completions;
        bool stopped = false;
        {
          std::lock_guard<std::mutex> lock(loop->queue->mu);
          new_fds.swap(loop->queue->new_fds);
          completions.swap(loop->queue->completions);
          stopped = loop->queue->stopped;
        }
        for (int fd : new_fds) {
          if (stopped) {
            ::close(fd);
            open_.fetch_sub(1, std::memory_order_relaxed);
            continue;
          }
          auto conn = std::make_unique<Conn>(options_.parser);
          conn->fd = fd;
          conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u64 = conn->id;
          if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
            ::close(fd);
            open_.fetch_sub(1, std::memory_order_relaxed);
            continue;
          }
          loop->conns.emplace(conn->id, std::move(conn));
        }
        for (auto& [conn_id, response] : completions) {
          auto it = loop->conns.find(conn_id);
          // Stale completion (connection died first): drop.
          if (it == loop->conns.end()) continue;
          CompleteResponse(loop, it->second.get(), std::move(response));
        }
        if (stopped) running = false;
        continue;
      }
      auto it = loop->conns.find(id);
      if (it == loop->conns.end()) continue;  // closed earlier this batch
      Conn* conn = it->second.get();
      uint32_t mask = events[i].events;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && (mask & EPOLLIN) == 0) {
        CloseConn(loop, conn);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        HandleWritable(loop, conn);
        if (loop->conns.find(id) == loop->conns.end()) continue;
      }
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        HandleReadable(loop, conn);
      }
    }
  }
  for (auto& [id, conn] : loop->conns) {
    ::close(conn->fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop->conns.clear();
}

void HttpServer::HandleReadable(IoLoop* loop, Conn* conn) {
  char buf[16384];
  while (true) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;  // drained
      continue;
    }
    if (n == 0) {  // EOF — peer is gone, even mid-request
      CloseConn(loop, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(loop, conn);
    return;
  }
  Pump(loop, conn);
}

void HttpServer::Pump(IoLoop* loop, Conn* conn) {
  if (conn->awaiting || conn->close_after_write) return;
  HttpRequest request;
  HttpError error;
  switch (conn->parser.Next(&request, &error)) {
    case HttpParser::Step::kNeedMore:
      if (conn->parser.TakeContinueNeeded()) {
        conn->out += "HTTP/1.1 100 Continue\r\n\r\n";
        FlushWrites(loop, conn);
      }
      return;
    case HttpParser::Step::kRequest: {
      if (conn->parser.TakeContinueNeeded()) {
        // The body raced in with the headers; the interim response is
        // still owed (and must precede the final one).
        conn->out += "HTTP/1.1 100 Continue\r\n\r\n";
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      conn->awaiting = true;
      conn->keep_alive_after_response = request.keep_alive;
      UpdateInterest(loop, conn, /*want_read=*/false, conn->want_write);
      Responder responder(loop->queue, conn->id);
      handler_(std::move(request), responder);
      // The handler may have fired the responder synchronously; that
      // completion is in the mailbox and the eventfd is hot — the loop
      // picks it up on the next epoll_wait pass.
      return;
    }
    case HttpParser::Step::kError: {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response;
      response.status = error.http_status;
      response.body = JsonWire::SerializeError(error.status);
      response.close = true;
      conn->close_after_write = true;
      conn->out += SerializeResponse(response);
      responses_.fetch_add(1, std::memory_order_relaxed);
      UpdateInterest(loop, conn, /*want_read=*/false, conn->want_write);
      FlushWrites(loop, conn);
      return;
    }
  }
}

void HttpServer::CompleteResponse(IoLoop* loop, Conn* conn,
                                  HttpResponse response) {
  if (!conn->awaiting) return;  // defensive: unexpected double completion
  conn->awaiting = false;
  if (!conn->keep_alive_after_response) response.close = true;
  if (response.close) conn->close_after_write = true;
  conn->out += SerializeResponse(response);
  responses_.fetch_add(1, std::memory_order_relaxed);
  FlushWrites(loop, conn);
  if (loop->conns.find(conn->id) == loop->conns.end()) return;  // closed
  if (conn->close_after_write) return;
  UpdateInterest(loop, conn, /*want_read=*/true, conn->want_write);
  // Pipelined bytes may already be buffered; the socket will never
  // re-signal EPOLLIN for them.
  Pump(loop, conn);
}

void HttpServer::FlushWrites(IoLoop* loop, Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_off,
                        conn->out.size() - conn->out_off);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(loop, conn, conn->want_read, /*want_write=*/true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(loop, conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    UpdateInterest(loop, conn, conn->want_read, /*want_write=*/false);
  }
  if (conn->close_after_write) CloseConn(loop, conn);
}

void HttpServer::HandleWritable(IoLoop* loop, Conn* conn) {
  uint64_t id = conn->id;
  FlushWrites(loop, conn);
  if (loop->conns.find(id) == loop->conns.end()) return;  // closed
  if (conn->out.empty() && !conn->awaiting && !conn->close_after_write) {
    Pump(loop, conn);
  }
}

void HttpServer::UpdateInterest(IoLoop* loop, Conn* conn, bool want_read,
                                bool want_write) {
  if (conn->want_read == want_read && conn->want_write == want_write) return;
  conn->want_read = want_read;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) < 0) {
    CloseConn(loop, conn);
  }
}

void HttpServer::CloseConn(IoLoop* loop, Conn* conn) {
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  open_.fetch_sub(1, std::memory_order_relaxed);
  loop->conns.erase(conn->id);  // destroys *conn
}

}  // namespace hopi::net
