// HttpServer: a zero-dependency epoll HTTP/1.1 transport.
//
// Topology (the ISSUE's acceptor + IO-thread design):
//
//   acceptor thread ──round-robin──▶ IO thread 0 (epoll loop)
//     accept4 + refuse over cap      IO thread 1 (epoll loop) ...
//
// Each IO thread owns an epoll instance, an eventfd, and the
// connections assigned to it; connections never migrate, so all
// per-connection state (parser, write buffer) is thread-private and
// lock-free. The only cross-thread traffic is the IO queue: the
// acceptor posts new fds, and Responders post finished responses, both
// under one mutex with an eventfd wake.
//
// The handler is invoked on the IO thread with a Responder — a small
// completion handle that may be fired synchronously (stats, errors) or
// carried into EnginePool's worker callback and fired from there. That
// is what makes the loop non-blocking end to end: the IO thread never
// waits on the engine; an admitted request parks the connection
// (EPOLLIN paused — one request in flight per connection, responses
// can never be reordered) until its Responder posts back.
//
// Reads, writes, and accepts are all non-blocking; short writes park
// the remainder under EPOLLOUT. Overload behavior: beyond
// max_connections the acceptor refuses (accept + immediate close —
// draining the backlog beats letting SYNs time out), and request-level
// shedding is the service layer's job (HTTP 429 via the pool's
// admission controller).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "util/status.h"

namespace hopi::net {

struct HttpServerOptions {
  /// IPv4 address to bind ("0.0.0.0" for all interfaces).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; read it back via port().
  uint16_t port = 0;
  /// Epoll loops. One saturates loopback benches; a NIC-facing deploy
  /// wants a few.
  size_t num_io_threads = 1;
  /// Accepted-connection cap; beyond it the acceptor refuses new
  /// connections immediately.
  size_t max_connections = 1024;
  HttpParserLimits parser = {};
};

/// Monotonic counters plus the open-connection gauge.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t connections_closed = 0;
  uint64_t requests = 0;        ///< complete requests handed to the handler
  uint64_t responses = 0;       ///< responses fully serialized into a socket
  uint64_t parse_errors = 0;    ///< requests refused with 4xx/5xx at parse
  uint64_t open_connections = 0;  ///< gauge
};

class HttpServer {
 public:
  /// Completion handle for exactly one request. Copyable (the copy that
  /// reaches an EnginePool callback fires it); Send is thread-safe and
  /// idempotent — the first call wins, later calls are dropped, and a
  /// Send after the connection died or the server stopped is silently
  /// discarded (the client is gone; there is nobody to tell).
  class Responder {
   public:
    void Send(HttpResponse response) const;

   private:
    friend class HttpServer;
    struct IoQueue;
    Responder(std::shared_ptr<IoQueue> queue, uint64_t conn_id);
    std::shared_ptr<IoQueue> queue_;
    uint64_t conn_id_ = 0;
    std::shared_ptr<std::atomic<bool>> sent_;
  };

  /// Runs on the IO thread owning the connection. Must not block; fire
  /// the Responder now or hand it to an async completion.
  using Handler = std::function<void(HttpRequest, Responder)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();  // Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, spawns the acceptor and IO threads. IOError /
  /// InvalidArgument on socket failures; FailedPrecondition if already
  /// started.
  Status Start();

  /// Closes the listener, joins all threads, closes every connection.
  /// In-flight Responders outlive the server safely (their sends are
  /// dropped). Idempotent.
  void Stop();

  /// The bound port (resolves port 0). Valid after Start().
  uint16_t port() const { return bound_port_; }

  ServerStats Stats() const;

 private:
  struct Conn;
  struct IoLoop;

  void AcceptorLoop();
  void IoThreadLoop(IoLoop* loop);
  void HandleReadable(IoLoop* loop, Conn* conn);
  void HandleWritable(IoLoop* loop, Conn* conn);
  /// Parses buffered bytes; dispatches at most one request (pausing
  /// reads until its response is sent) or writes a parse reject.
  void Pump(IoLoop* loop, Conn* conn);
  void CompleteResponse(IoLoop* loop, Conn* conn, HttpResponse response);
  void FlushWrites(IoLoop* loop, Conn* conn);
  void UpdateInterest(IoLoop* loop, Conn* conn, bool want_read,
                      bool want_write);
  void CloseConn(IoLoop* loop, Conn* conn);

  Handler handler_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  int acceptor_wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<IoLoop>> io_loops_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_io_{0};

  // ServerStats counters.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> open_{0};
};

}  // namespace hopi::net
