// LIN/LOUT index-organized tables (paper Sec 3.4 / Sec 5.1).
//
// The paper stores the cover in two Oracle tables,
//   LIN(ID, INID[, DIST])  and  LOUT(ID, OUTID[, DIST]),
// each as an index-organized table sorted by the *forward* key (ID, INID)
// plus a *backward* index on (INID, ID) — doubling the stored integers.
// This embedded store keeps exactly those four sorted runs and executes
// the paper's SQL access paths:
//   connection test:  intersect LOUT rows of ID1 with LIN rows of ID2
//                     (SELECT COUNT(*) ... WHERE LOUT.OUTID = LIN.INID),
//   distance lookup:  SELECT MIN(LOUT.DIST + LIN.DIST) ...,
//   descendants:      backward LIN probes for every center in LOUT(ID),
// plus the "simple additional queries" that compensate for nodes not being
// stored in their own labels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "storage/compress.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::storage {

/// Writer knobs for the versioned WriteToFile overload.
struct StoreWriteOptions {
  /// kFormatVersion (3, raw rows — the zero-copy mmap layout) or
  /// kFormatVersionV4 (4, block-compressed rows — smaller files,
  /// decoded lazily by MappedLinLoutStore).
  uint32_t format_version = 4;
  /// Block sizing for v4; ignored when writing v3.
  CompressOptions compress;
};

/// One table row: a node and one center from its label.
struct TableRow {
  NodeId id;
  NodeId center;
  uint32_t dist;

  friend bool operator==(const TableRow& a, const TableRow& b) {
    return a.id == b.id && a.center == b.center && a.dist == b.dist;
  }
};

class LinLoutStore {
 public:
  LinLoutStore() = default;

  /// Loads the cover into the four sorted runs.
  static LinLoutStore FromCover(const twohop::TwoHopCover& cover,
                                bool with_distance);

  /// Reconstructs a TwoHopCover (for rebuilding an index from storage).
  twohop::TwoHopCover ToCover(size_t num_nodes) const;

  // ---- the paper's query shapes ----

  /// True iff id1 ->* id2 according to the stored cover.
  bool TestConnection(NodeId id1, NodeId id2) const;

  /// SELECT MIN(LOUT.DIST + LIN.DIST) ... — nullopt when unconnected.
  std::optional<uint32_t> MinDistance(NodeId id1, NodeId id2) const;

  /// All strict descendants of `id` (sorted), via backward LIN probes.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// All strict ancestors of `id` (sorted), via backward LOUT probes.
  std::vector<NodeId> Ancestors(NodeId id) const;

  /// Forward range scans (rows of one node), as the paper's
  /// index-organized tables would return them.
  std::vector<TableRow> ScanLin(NodeId id) const;
  std::vector<TableRow> ScanLout(NodeId id) const;

  /// Forward range scans exported as 2-hop label entries, filling
  /// `out` in one pass — the QueryEngine label-cache fill path.
  void LinLabel(NodeId id, std::vector<twohop::LabelEntry>* out) const;
  void LoutLabel(NodeId id, std::vector<twohop::LabelEntry>* out) const;

  // ---- storage accounting (Sec 7.2) ----

  /// Total label entries (|L| — rows across LIN and LOUT).
  uint64_t NumEntries() const { return lin_fwd_.size() + lout_fwd_.size(); }

  /// Integers stored: 2 per row in the forward table + 2 per row in the
  /// backward index (plus one DIST integer per forward row when
  /// distance-aware), matching the paper's arithmetic.
  uint64_t StorageIntegers() const;

  bool with_distance() const { return with_distance_; }

  // ---- persistence ----
  //
  // Files use the versioned on-disk format defined in storage/format.h
  // and specified byte-by-byte in docs/FILE_FORMAT.md. The parameter-
  // less WriteToFile emits v3 (raw rows + section table + trailing
  // CRC-32, the zero-copy mmap layout); the options overload can emit
  // v4 (block-compressed rows) instead. Both are crash-safe: the image
  // is staged in a sibling temp file, fsynced, and atomically renamed
  // into place, so readers see either the old file or the new one —
  // never a torn mix.
  //
  // ReadFromFile accepts v2 through v4 (reading an old file and
  // writing it back migrates it forward). Stale/future versions fail
  // with Unsupported; foreign, truncated, or bit-flipped files fail
  // with Corruption — never garbage rows. For zero-copy (v3) or
  // lazily decoded (v4) reads see storage/mapped_linlout.h.

  Status WriteToFile(const std::string& path) const;
  Status WriteToFile(const std::string& path,
                     const StoreWriteOptions& options) const;
  static Result<LinLoutStore> ReadFromFile(const std::string& path);

 private:
  // Forward runs sorted by (id, center); backward runs by (center, id).
  std::vector<TableRow> lin_fwd_;
  std::vector<TableRow> lin_bwd_;
  std::vector<TableRow> lout_fwd_;
  std::vector<TableRow> lout_bwd_;
  bool with_distance_ = false;

  void BuildBackwardRuns();
};

}  // namespace hopi::storage
