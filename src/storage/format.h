// On-disk LIN/LOUT file format (versions 3 and 4) — encode, decode,
// validate.
//
// This header is the single in-code definition of the format; the
// byte-level specification (including the v1/v2 history and the error
// contract) lives in docs/FILE_FORMAT.md and MUST be updated in the
// same change as this file.
//
// Layout of a v3 file (all integers little-endian):
//
//   header   16 bytes   magic "HOPI", version u32, flags u32,
//                       header_bytes u32 (= kHeaderBytes)
//   table    8 x 16 B   {offset u64, length u64} per Section, byte
//                       offsets from the start of the file
//   sections ...        see Section; every section starts 8-aligned
//                       (zero padding between sections)
//   trailer  8 bytes    CRC-32 u32 over bytes [0, size-8), then the
//                       trailer magic "IPOH"
//
// Forward label sections pack rows as (center u32, dist u32) pairs —
// bit-identical to twohop::LabelEntry — so a mapped reader can serve a
// node's label as a borrowed span without any row conversion. The
// per-run directory maps a key (id for forward runs, center id for
// backward runs) to its row range.
//
// A v4 file keeps the same envelope (magic, flags, 8-aligned sections,
// whole-file checksum trailer) but stores label rows block-compressed
// (storage/compress.h) and widens the header to 24 bytes:
//
//   header   24 bytes   magic "HOPI", version u32 (=4), flags u32,
//                       header_bytes u32 (= kHeaderBytesV4),
//                       meta_crc u32, reserved u32 (zero)
//   table    12 x 16 B  {offset u64, length u64} per SectionV4
//   sections ...        4 label sections x (dir, block table, blob);
//                       ALL dirs and block tables come before ANY
//                       blob, so `meta_crc` — a CRC-32 over bytes
//                       [0, first blob offset) with its own field
//                       zeroed — seals every structural field without
//                       touching a blob byte. That is what makes the
//                       lazy open (skip the whole-file checksum, pay
//                       per-block CRCs at decode time) safe for
//                       covers bigger than RAM.
//   trailer  8 bytes    same as v3
//
// Decoding never trusts a field before validating it: magic/version/
// flags first, then a checksum (the whole-file trailer, or for lazy v4
// opens the metadata CRC now and per-block CRCs at decode), then
// section bounds and sortedness. A torn or bit-flipped file surfaces
// as Status::Corruption — never a crash or silently wrong rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "storage/compress.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::storage {

struct TableRow;  // linlout.h

inline constexpr char kMagic[4] = {'H', 'O', 'P', 'I'};
inline constexpr char kTrailerMagic[4] = {'I', 'P', 'O', 'H'};
/// v3: raw LabelEntry rows, zero-copy mappable.
inline constexpr uint32_t kFormatVersion = 3;
/// v4: block-compressed rows (storage/compress.h), decoded lazily.
inline constexpr uint32_t kFormatVersionV4 = 4;
/// v2 (PR 2's header + bare row triplets) is still readable by the
/// buffered reader; the v3 writer is the migration path.
inline constexpr uint32_t kLegacyFormatVersion = 2;
inline constexpr uint32_t kFlagDistance = 1u << 0;
inline constexpr uint32_t kKnownFlags = kFlagDistance;

/// The eight sections of a v3 file, in file order.
enum Section : size_t {
  kLinDir = 0,    // DirEntry per node with LIN rows, sorted by id
  kLinRows,       // LabelEntry rows, grouped by node, sorted by center
  kLoutDir,       // DirEntry per node with LOUT rows, sorted by id
  kLoutRows,      // LabelEntry rows, grouped by node, sorted by center
  kLinBwdDir,     // DirEntry per center in LIN, sorted by center
  kLinBwdIds,     // u32 node ids, grouped by center, sorted
  kLoutBwdDir,    // DirEntry per center in LOUT, sorted by center
  kLoutBwdIds,    // u32 node ids, grouped by center, sorted
  kNumSections
};

/// One directory entry: `count` rows of `key` starting at element index
/// `begin` of the paired rows/ids section. Entries partition their rows
/// section in order (begin values are cumulative counts).
struct DirEntry {
  uint32_t key;
  uint32_t count;
  uint64_t begin;
};
static_assert(sizeof(DirEntry) == 16 && alignof(DirEntry) == 8);
static_assert(sizeof(twohop::LabelEntry) == 8 &&
                  alignof(twohop::LabelEntry) == 4,
              "forward row sections alias twohop::LabelEntry");

struct SectionRange {
  uint64_t offset = 0;  // byte offset from the start of the file
  uint64_t length = 0;  // byte length (excludes inter-section padding)
};

inline constexpr size_t kHeaderBytes = 16 + kNumSections * 16;
inline constexpr size_t kTrailerBytes = 8;

/// The twelve sections of a v4 file, in file order. Structure-bearing
/// sections (directories + block tables) ALL precede the blobs — the
/// metadata CRC depends on that ordering (see the header comment).
enum SectionV4 : size_t {
  kV4LinDir = 0,      // V4DirEntry per node with LIN rows, sorted by id
  kV4LinBlocks,       // V4BlockEntry per LIN block
  kV4LoutDir,         // V4DirEntry per node with LOUT rows
  kV4LoutBlocks,      // V4BlockEntry per LOUT block
  kV4LinBwdDir,       // V4DirEntry per center in LIN, sorted by center
  kV4LinBwdBlocks,    // V4BlockEntry per backward-LIN block
  kV4LoutBwdDir,      // V4DirEntry per center in LOUT
  kV4LoutBwdBlocks,   // V4BlockEntry per backward-LOUT block
  kV4LinBlob,         // compressed LIN row bytes
  kV4LoutBlob,        // compressed LOUT row bytes
  kV4LinBwdBlob,      // compressed backward-LIN id bytes (dist-less)
  kV4LoutBwdBlob,     // compressed backward-LOUT id bytes (dist-less)
  kNumSectionsV4
};

inline constexpr size_t kHeaderBytesV4 = 24 + kNumSectionsV4 * 16;

/// Typed, validated view over a v3 file image. Spans alias the image —
/// they are valid exactly as long as the underlying bytes (the mmap or
/// the heap buffer) stay alive.
struct FileView {
  uint32_t flags = 0;
  bool with_distance = false;
  std::span<const DirEntry> lin_dir, lout_dir, lin_bwd_dir, lout_bwd_dir;
  std::span<const twohop::LabelEntry> lin_rows, lout_rows;
  std::span<const uint32_t> lin_bwd_ids, lout_bwd_ids;
};

/// One label section of a v4 file: the directory and block table
/// (metadata, CRC-sealed at open) plus the compressed blob (sealed
/// per block, decoded on demand). Spans alias the file image.
struct LabelSectionView {
  std::span<const V4DirEntry> dir;
  std::span<const V4BlockEntry> blocks;
  std::span<const std::byte> blob;

  /// Sum of block entry counts (|rows| of this section).
  uint64_t TotalEntries() const {
    uint64_t n = 0;
    for (const V4BlockEntry& b : blocks) n += b.num_entries;
    return n;
  }
};

/// Typed, validated view over a v4 file image. Same lifetime contract
/// as FileView: valid as long as the underlying bytes stay alive.
struct FileViewV4 {
  uint32_t flags = 0;
  bool with_distance = false;
  LabelSectionView lin, lout, lin_bwd, lout_bwd;
};

/// Magic/version/flags of any HOPI LIN/LOUT file (no version policy —
/// callers decide which versions they accept). Errors: Corruption for
/// a short image or foreign magic, Unsupported for the pre-versioned
/// v1 layout ("HOPILL01").
struct RawHeader {
  uint32_t version = 0;
  uint32_t flags = 0;
};
Result<RawHeader> ReadRawHeader(std::span<const std::byte> image,
                                const std::string& path);

/// Full v3 decode: checksum, section table bounds, directory/row
/// sortedness and cross-section consistency. The returned view aliases
/// `image`. Errors: Corruption (torn/bit-flipped/inconsistent file),
/// Unsupported (not version 3 — v2 callers use their own path).
Result<FileView> ParseV3(std::span<const std::byte> image,
                         const std::string& path);

struct ParseV4Options {
  /// Verify the whole-file trailer checksum at parse time (the v3
  /// guarantee: after Open, no byte of the file is untrusted). Turning
  /// it off is the lazy open for covers bigger than RAM: the metadata
  /// CRC is still verified here — every dir/block-table field is
  /// trusted — but blob bytes are only checked by their per-block CRC
  /// when a block is first decoded, so Open never faults in the label
  /// data.
  bool verify_file_checksum = true;
};

/// Full v4 decode: header, checksum policy per ParseV4Options, section
/// table bounds, directory sortedness, block-table tiling (blocks
/// partition their dir and blob exactly) and cross-section entry
/// totals. The returned view aliases `image`. Errors: Corruption,
/// Unsupported (not version 4).
Result<FileViewV4> ParseV4(std::span<const std::byte> image,
                           const std::string& path,
                           ParseV4Options options = {});

/// Serializes the four sorted runs into a complete v3 file image
/// (header, sections, checksum trailer). The forward runs must be
/// sorted by (id, center), the backward runs by (center, id) — exactly
/// the invariant LinLoutStore maintains.
std::vector<std::byte> BuildFileImage(std::span<const TableRow> lin_fwd,
                                      std::span<const TableRow> lout_fwd,
                                      std::span<const TableRow> lin_bwd,
                                      std::span<const TableRow> lout_bwd,
                                      bool with_distance);

/// Serializes the four sorted runs into a complete v4 file image:
/// block-compressed label sections (storage/compress.h), the metadata
/// CRC, and the same whole-file checksum trailer as v3.
std::vector<std::byte> BuildFileImageV4(std::span<const TableRow> lin_fwd,
                                        std::span<const TableRow> lout_fwd,
                                        std::span<const TableRow> lin_bwd,
                                        std::span<const TableRow> lout_bwd,
                                        bool with_distance,
                                        const CompressOptions& compress = {});

/// Crash-safe whole-file write: serialize to `path + ".tmp"`, fsync the
/// data, atomically rename over `path`, then fsync the directory so the
/// rename itself is durable. Readers concurrently opening `path` see
/// either the complete old file or the complete new file, never a
/// partial write. Caveat: an IOError naming the *directory* means the
/// rename already published the new file and only its durability is
/// unconfirmed — the error message says so explicitly. On platforms
/// without POSIX fsync/rename-over the fallback is remove+rename
/// (atomicity is then best-effort).
Status AtomicWriteFile(const std::string& path,
                       std::span<const std::byte> image);

/// Reads the whole file into memory (the buffered readers' first
/// step). Missing/unreadable files are IOError; everything after this
/// point is format validation.
Result<std::vector<std::byte>> ReadFileImage(const std::string& path);

/// Binary search of a directory; returns the row span for `key` (empty
/// when absent). `Rows` is twohop::LabelEntry or uint32_t.
template <typename Rows>
std::span<const Rows> LookupRows(std::span<const DirEntry> dir,
                                 std::span<const Rows> rows, uint32_t key) {
  size_t lo = 0, hi = dir.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (dir[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == dir.size() || dir[lo].key != key) return {};
  return rows.subspan(dir[lo].begin, dir[lo].count);
}

/// Header introspection for tools and the torn-write tests: reads just
/// the header + section table of a v3/v4 file (no checksum pass).
/// `sections` holds kNumSections entries for v3, kNumSectionsV4 for
/// v4, and is empty for v2 (which has no section table).
struct FormatInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t file_bytes = 0;
  std::vector<SectionRange> sections;
};
Result<FormatInfo> InspectFile(const std::string& path);

}  // namespace hopi::storage
