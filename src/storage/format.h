// On-disk LIN/LOUT file format (version 3) — encode, decode, validate.
//
// This header is the single in-code definition of the format; the
// byte-level specification (including the v1/v2 history and the error
// contract) lives in docs/FILE_FORMAT.md and MUST be updated in the
// same change as this file.
//
// Layout of a v3 file (all integers little-endian):
//
//   header   16 bytes   magic "HOPI", version u32, flags u32,
//                       header_bytes u32 (= kHeaderBytes)
//   table    8 x 16 B   {offset u64, length u64} per Section, byte
//                       offsets from the start of the file
//   sections ...        see Section; every section starts 8-aligned
//                       (zero padding between sections)
//   trailer  8 bytes    CRC-32 u32 over bytes [0, size-8), then the
//                       trailer magic "IPOH"
//
// Forward label sections pack rows as (center u32, dist u32) pairs —
// bit-identical to twohop::LabelEntry — so a mapped reader can serve a
// node's label as a borrowed span without any row conversion. The
// per-run directory maps a key (node id for forward runs, center id
// for backward runs) to its row range.
//
// Decoding never trusts a field before validating it: magic/version/
// flags first, then the trailing checksum over the whole image, then
// section bounds and sortedness. A torn or bit-flipped file surfaces
// as Status::Corruption — never a crash or silently wrong rows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::storage {

struct TableRow;  // linlout.h

inline constexpr char kMagic[4] = {'H', 'O', 'P', 'I'};
inline constexpr char kTrailerMagic[4] = {'I', 'P', 'O', 'H'};
inline constexpr uint32_t kFormatVersion = 3;
/// v2 (PR 2's header + bare row triplets) is still readable by the
/// buffered reader; the v3 writer is the migration path.
inline constexpr uint32_t kLegacyFormatVersion = 2;
inline constexpr uint32_t kFlagDistance = 1u << 0;
inline constexpr uint32_t kKnownFlags = kFlagDistance;

/// The eight sections of a v3 file, in file order.
enum Section : size_t {
  kLinDir = 0,    // DirEntry per node with LIN rows, sorted by id
  kLinRows,       // LabelEntry rows, grouped by node, sorted by center
  kLoutDir,       // DirEntry per node with LOUT rows, sorted by id
  kLoutRows,      // LabelEntry rows, grouped by node, sorted by center
  kLinBwdDir,     // DirEntry per center in LIN, sorted by center
  kLinBwdIds,     // u32 node ids, grouped by center, sorted
  kLoutBwdDir,    // DirEntry per center in LOUT, sorted by center
  kLoutBwdIds,    // u32 node ids, grouped by center, sorted
  kNumSections
};

/// One directory entry: `count` rows of `key` starting at element index
/// `begin` of the paired rows/ids section. Entries partition their rows
/// section in order (begin values are cumulative counts).
struct DirEntry {
  uint32_t key;
  uint32_t count;
  uint64_t begin;
};
static_assert(sizeof(DirEntry) == 16 && alignof(DirEntry) == 8);
static_assert(sizeof(twohop::LabelEntry) == 8 &&
                  alignof(twohop::LabelEntry) == 4,
              "forward row sections alias twohop::LabelEntry");

struct SectionRange {
  uint64_t offset = 0;  // byte offset from the start of the file
  uint64_t length = 0;  // byte length (excludes inter-section padding)
};

inline constexpr size_t kHeaderBytes = 16 + kNumSections * 16;
inline constexpr size_t kTrailerBytes = 8;

/// Typed, validated view over a v3 file image. Spans alias the image —
/// they are valid exactly as long as the underlying bytes (the mmap or
/// the heap buffer) stay alive.
struct FileView {
  uint32_t flags = 0;
  bool with_distance = false;
  std::span<const DirEntry> lin_dir, lout_dir, lin_bwd_dir, lout_bwd_dir;
  std::span<const twohop::LabelEntry> lin_rows, lout_rows;
  std::span<const uint32_t> lin_bwd_ids, lout_bwd_ids;
};

/// Magic/version/flags of any HOPI LIN/LOUT file (no version policy —
/// callers decide which versions they accept). Errors: Corruption for
/// a short image or foreign magic, Unsupported for the pre-versioned
/// v1 layout ("HOPILL01").
struct RawHeader {
  uint32_t version = 0;
  uint32_t flags = 0;
};
Result<RawHeader> ReadRawHeader(std::span<const std::byte> image,
                                const std::string& path);

/// Full v3 decode: checksum, section table bounds, directory/row
/// sortedness and cross-section consistency. The returned view aliases
/// `image`. Errors: Corruption (torn/bit-flipped/inconsistent file),
/// Unsupported (not version 3 — v2 callers use their own path).
Result<FileView> ParseV3(std::span<const std::byte> image,
                         const std::string& path);

/// Serializes the four sorted runs into a complete v3 file image
/// (header, sections, checksum trailer). The forward runs must be
/// sorted by (id, center), the backward runs by (center, id) — exactly
/// the invariant LinLoutStore maintains.
std::vector<std::byte> BuildFileImage(std::span<const TableRow> lin_fwd,
                                      std::span<const TableRow> lout_fwd,
                                      std::span<const TableRow> lin_bwd,
                                      std::span<const TableRow> lout_bwd,
                                      bool with_distance);

/// Crash-safe whole-file write: serialize to `path + ".tmp"`, fsync the
/// data, atomically rename over `path`, then fsync the directory so the
/// rename itself is durable. Readers concurrently opening `path` see
/// either the complete old file or the complete new file, never a
/// partial write. Caveat: an IOError naming the *directory* means the
/// rename already published the new file and only its durability is
/// unconfirmed — the error message says so explicitly. On platforms
/// without POSIX fsync/rename-over the fallback is remove+rename
/// (atomicity is then best-effort).
Status AtomicWriteFile(const std::string& path,
                       std::span<const std::byte> image);

/// Reads the whole file into memory (the buffered readers' first
/// step). Missing/unreadable files are IOError; everything after this
/// point is format validation.
Result<std::vector<std::byte>> ReadFileImage(const std::string& path);

/// Binary search of a directory; returns the row span for `key` (empty
/// when absent). `Rows` is twohop::LabelEntry or uint32_t.
template <typename Rows>
std::span<const Rows> LookupRows(std::span<const DirEntry> dir,
                                 std::span<const Rows> rows, uint32_t key) {
  size_t lo = 0, hi = dir.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (dir[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == dir.size() || dir[lo].key != key) return {};
  return rows.subspan(dir[lo].begin, dir[lo].count);
}

/// Header introspection for tools and the torn-write tests: reads just
/// the header + section table of a v3 file (no checksum pass).
struct FormatInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t file_bytes = 0;
  std::array<SectionRange, kNumSections> sections{};
};
Result<FormatInfo> InspectFile(const std::string& path);

}  // namespace hopi::storage
