// Block compression for LIN/LOUT label rows (the v4 section type).
//
// The v3 format stores every label row as raw (center u32, dist u32)
// pairs, so a mapped store can only serve covers whose labels fit
// uncompressed. v4 instead packs rows into self-contained compressed
// blocks, following the delta + prefix-clustering design the ROADMAP
// cites (CSIndex's DataComp): centers inside a row are sorted and
// unique, so they delta-encode as varints, and consecutive rows in a
// cover are highly similar, so a sliding-window clustering pass makes
// the first row of each block the cluster dictionary and stores only
// the shared-prefix length for the rows after it.
//
// One block is the unit of IO, checksumming, decoding and caching:
//
//   block   := row*                        (concatenated, no padding)
//   row     := prefix_count:varint         entries shared with the
//                                          block's first row (0 for the
//                                          first row itself)
//              suffix_entry*               count = dir.count - prefix
//   suffix_entry := delta:varint           center - prev_center - 1
//                                          (prev = last prefix center,
//                                          or "none" -> raw center)
//              [dist:varint]               only in with_distance
//                                          forward sections
//
// Row keys and counts live in the per-section directory (V4DirEntry),
// NOT in the blob — the decoder always knows how many entries to read,
// so a corrupt length cannot make it run away. Every block carries a
// CRC-32 in its V4BlockEntry and decoding revalidates structure
// (bounds, ascending centers, exact byte consumption) before any entry
// is returned: a bit-flipped blob surfaces as Status::Corruption,
// never a crash or silently wrong rows.
//
// DecodedBlock is deliberately defined inline here: engine/backend.h
// exposes it as the unit of the engine's byte-budgeted block cache,
// and that header must stay usable without linking the storage
// library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::storage {

/// Directory entry of a v4 label section: one per row (node id for
/// forward sections, center id for backward sections), sorted by key.
/// Unlike v3's DirEntry there is no `begin` — row positions follow
/// from the cumulative counts, and the block table says which block
/// holds which row range.
struct V4DirEntry {
  uint32_t key;
  uint32_t count;  // entries in this row, always >= 1
};
static_assert(sizeof(V4DirEntry) == 8 && alignof(V4DirEntry) == 4);

/// Block table entry of a v4 label section: one compressed block of
/// consecutive rows. Blocks tile their section exactly: block i's rows
/// start where block i-1's ended (same for blob bytes), which the
/// parser verifies before any block is decoded.
struct V4BlockEntry {
  uint64_t blob_offset;  // first byte in the section's blob
  uint32_t blob_bytes;   // encoded size, > 0
  uint32_t crc;          // CRC-32 of the encoded bytes
  uint64_t first_dir;    // index of the block's first row in the dir
  uint32_t num_rows;     // rows in this block, >= 1
  uint32_t num_entries;  // sum of dir counts over those rows
};
static_assert(sizeof(V4BlockEntry) == 32 && alignof(V4BlockEntry) == 8);

/// Writer knobs for the clustering pass. The defaults keep one block
/// around a page: big enough to amortize the dictionary row, small
/// enough that one cold probe decodes microseconds of work.
struct CompressOptions {
  /// Close the current block once its encoded bytes reach this.
  size_t target_block_bytes = 4096;
  /// Close early when a row shares no prefix with the current
  /// dictionary row and the block already holds this many bytes —
  /// the sliding-window cluster split (a new cluster seeds a new
  /// dictionary instead of storing the divergent row verbatim).
  size_t cluster_split_bytes = 1024;
};

/// One fully decoded block: every row materialized as LabelEntry rows,
/// plus the row directory needed to serve RowFor(key) lookups. This is
/// the unit the engine's LabelCache holds (shared_ptr-pinned: eviction
/// drops the cache's reference, in-flight LabelViews keep the block
/// alive).
struct DecodedBlock {
  std::vector<twohop::LabelEntry> entries;  // rows back to back
  std::vector<uint32_t> row_keys;           // strictly ascending
  std::vector<uint32_t> row_begin;          // row_keys.size() + 1 offsets
  // Packed SoA mirrors of `entries` for the vectorized join kernels
  // (twohop/join_kernel.h): the same rows column-wise, plus one
  // LabelSummary word per row for the O(1) disjointness prefilter.
  // Built once at decode time by BuildJoinMirrors().
  std::vector<uint32_t> centers;            // entries[i].center
  std::vector<uint32_t> dists;              // entries[i].dist
  std::vector<uint64_t> row_summaries;      // LabelSummary word per row

  size_t NumRows() const { return row_keys.size(); }

  /// Heap footprint for the cache's byte budget.
  size_t ApproxBytes() const {
    return sizeof(DecodedBlock) +
           entries.size() * sizeof(twohop::LabelEntry) +
           row_keys.size() * sizeof(uint32_t) +
           row_begin.size() * sizeof(uint32_t) +
           centers.size() * sizeof(uint32_t) +
           dists.size() * sizeof(uint32_t) +
           row_summaries.size() * sizeof(uint64_t);
  }

  std::span<const twohop::LabelEntry> Row(size_t r) const {
    return std::span<const twohop::LabelEntry>(entries)
        .subspan(row_begin[r], row_begin[r + 1] - row_begin[r]);
  }

  /// Packed kernel-ready view of row r (SoA columns + summary).
  twohop::JoinView JoinRow(size_t r) const {
    twohop::JoinView v;
    v.centers = centers.data() + row_begin[r];
    v.dists = dists.data() + row_begin[r];
    v.n = row_begin[r + 1] - row_begin[r];
    v.summary = twohop::LabelSummary{row_summaries[r]};
    return v;
  }

  /// Fills the SoA columns and per-row summaries from `entries` /
  /// `row_begin`. DecodeLabelBlock calls this; hand-built blocks (the
  /// engine's one-row copy route, tests) must call it after populating
  /// the AoS members.
  void BuildJoinMirrors() {
    centers.resize(entries.size());
    dists.resize(entries.size());
    row_summaries.assign(NumRows(), twohop::LabelSummary::kEmptyWord);
    for (size_t r = 0; r < NumRows(); ++r) {
      twohop::LabelSummary s = twohop::LabelSummary::Empty();
      for (uint32_t i = row_begin[r]; i < row_begin[r + 1]; ++i) {
        centers[i] = entries[i].center;
        dists[i] = entries[i].dist;
        s.Add(entries[i].center);
      }
      row_summaries[r] = s.word;
    }
  }

  /// Binary search by row key; -1 when the key is not in this block.
  int64_t RowIndexFor(uint32_t key) const {
    size_t lo = 0, hi = row_keys.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (row_keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == row_keys.size() || row_keys[lo] != key) return -1;
    return static_cast<int64_t>(lo);
  }

  /// Binary search by row key; empty span when the key is not in this
  /// block.
  std::span<const twohop::LabelEntry> RowFor(uint32_t key) const {
    int64_t r = RowIndexFor(key);
    return r < 0 ? std::span<const twohop::LabelEntry>{}
                 : Row(static_cast<size_t>(r));
  }
};

/// One input row for the encoder: a key and its sorted, unique-center
/// entries. Rows must arrive sorted by key; empty rows are skipped
/// (absent and empty are the same thing in the format, exactly like
/// v3 directories).
struct LabelRowRef {
  uint32_t key;
  std::span<const twohop::LabelEntry> entries;
};

/// A fully encoded v4 label section, ready to be laid into the file:
/// the directory, the block table, and the concatenated block bytes.
struct EncodedLabelSection {
  std::vector<V4DirEntry> dir;
  std::vector<V4BlockEntry> blocks;
  std::vector<std::byte> blob;
};

/// Compresses `rows` (sorted by key, centers sorted and unique within
/// each row) into blocks. `with_distance` selects whether per-entry
/// distances are encoded; backward sections always pass false.
EncodedLabelSection EncodeLabelRows(std::span<const LabelRowRef> rows,
                                    bool with_distance,
                                    const CompressOptions& options = {});

/// Decodes one block out of a section. Validates everything before
/// trusting it: the block's dir/blob ranges against the spans, the
/// per-block CRC, and the encoding itself (prefix bounds, center
/// overflow, exact byte consumption, entry totals). `context` names
/// the file/section for error messages. Errors: Corruption.
Result<DecodedBlock> DecodeLabelBlock(std::span<const std::byte> blob,
                                      std::span<const V4DirEntry> dir,
                                      const V4BlockEntry& block,
                                      bool with_distance,
                                      const std::string& context);

// ---- varint primitives (exposed for the codec property tests) ----

/// Appends the LEB128 encoding of `value` (1..5 bytes).
void PutVarint32(std::vector<std::byte>* out, uint32_t value);

/// Reads one varint from [*p, end), advancing *p. False on truncation
/// or a value that does not fit 32 bits (never reads past `end`).
bool GetVarint32(const std::byte** p, const std::byte* end, uint32_t* value);

}  // namespace hopi::storage
