#include "storage/compress.h"

#include <cstring>

#include "util/checksum.h"

namespace hopi::storage {

void PutVarint32(std::vector<std::byte>* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<std::byte>(value));
}

bool GetVarint32(const std::byte** p, const std::byte* end, uint32_t* value) {
  uint32_t result = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (*p == end) return false;
    uint32_t byte = static_cast<uint32_t>(**p);
    ++*p;
    if (shift == 28 && (byte & 0x7F) > 0x0F) return false;  // > 32 bits
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // 5 continuation bytes: overlong
}

namespace {

/// Entries match for prefix sharing when both the center and the
/// stored distance agree (the prefix is copied verbatim from the
/// dictionary row, so a distance mismatch would corrupt the row).
bool SameEntry(const twohop::LabelEntry& a, const twohop::LabelEntry& b,
               bool with_distance) {
  return a.center == b.center && (!with_distance || a.dist == b.dist);
}

size_t SharedPrefix(std::span<const twohop::LabelEntry> dict,
                    std::span<const twohop::LabelEntry> row,
                    bool with_distance) {
  size_t n = dict.size() < row.size() ? dict.size() : row.size();
  size_t p = 0;
  while (p < n && SameEntry(dict[p], row[p], with_distance)) ++p;
  return p;
}

/// Appends one row's encoding: prefix count, then delta-coded suffix
/// centers (and distances when enabled). `prev` is the last prefix
/// center, or nullopt when the suffix starts the row.
void EncodeRow(std::vector<std::byte>* out,
               std::span<const twohop::LabelEntry> row, size_t prefix,
               std::span<const twohop::LabelEntry> dict, bool with_distance) {
  PutVarint32(out, static_cast<uint32_t>(prefix));
  bool have_prev = prefix > 0;
  uint32_t prev = have_prev ? dict[prefix - 1].center : 0;
  for (size_t i = prefix; i < row.size(); ++i) {
    uint32_t center = row[i].center;
    PutVarint32(out, have_prev ? center - prev - 1 : center);
    if (with_distance) PutVarint32(out, row[i].dist);
    prev = center;
    have_prev = true;
  }
}

}  // namespace

EncodedLabelSection EncodeLabelRows(std::span<const LabelRowRef> rows,
                                    bool with_distance,
                                    const CompressOptions& options) {
  EncodedLabelSection section;
  std::vector<std::byte> cur;            // bytes of the open block
  std::span<const twohop::LabelEntry> dict;  // its dictionary row
  uint64_t block_first_dir = 0;
  uint32_t block_rows = 0;
  uint32_t block_entries = 0;

  auto flush = [&] {
    if (block_rows == 0) return;
    V4BlockEntry block;
    block.blob_offset = section.blob.size();
    block.blob_bytes = static_cast<uint32_t>(cur.size());
    block.crc = Crc32(cur.data(), cur.size());
    block.first_dir = block_first_dir;
    block.num_rows = block_rows;
    block.num_entries = block_entries;
    section.blocks.push_back(block);
    section.blob.insert(section.blob.end(), cur.begin(), cur.end());
    cur.clear();
    block_first_dir += block_rows;
    block_rows = 0;
    block_entries = 0;
  };

  for (const LabelRowRef& row : rows) {
    if (row.entries.empty()) continue;  // absent == empty, like v3 dirs
    if (block_rows > 0) {
      size_t prefix = SharedPrefix(dict, row.entries, with_distance);
      // Sliding-window split: target size reached, or the row opens a
      // new cluster (no shared prefix) and this block already earns
      // its keep.
      if (cur.size() >= options.target_block_bytes ||
          (prefix == 0 && cur.size() >= options.cluster_split_bytes)) {
        flush();
      } else {
        EncodeRow(&cur, row.entries, prefix, dict, with_distance);
        ++block_rows;
        block_entries += static_cast<uint32_t>(row.entries.size());
        section.dir.push_back(
            {row.key, static_cast<uint32_t>(row.entries.size())});
        continue;
      }
    }
    // First row of a fresh block: it IS the dictionary.
    dict = row.entries;
    EncodeRow(&cur, row.entries, 0, dict, with_distance);
    block_rows = 1;
    block_entries = static_cast<uint32_t>(row.entries.size());
    section.dir.push_back(
        {row.key, static_cast<uint32_t>(row.entries.size())});
  }
  flush();
  return section;
}

Result<DecodedBlock> DecodeLabelBlock(std::span<const std::byte> blob,
                                      std::span<const V4DirEntry> dir,
                                      const V4BlockEntry& block,
                                      bool with_distance,
                                      const std::string& context) {
  auto corrupt = [&context](const char* what) {
    return Status::Corruption(std::string(what) + " in " + context);
  };
  // Bounds first: never dereference a byte the block table cannot
  // prove is there.
  if (block.num_rows == 0 || block.first_dir > dir.size() ||
      block.num_rows > dir.size() - block.first_dir) {
    return corrupt("block row range out of bounds");
  }
  if (block.blob_bytes == 0 || block.blob_offset > blob.size() ||
      block.blob_bytes > blob.size() - block.blob_offset) {
    return corrupt("block byte range out of bounds");
  }
  std::span<const std::byte> bytes =
      blob.subspan(block.blob_offset, block.blob_bytes);
  if (Crc32(bytes.data(), bytes.size()) != block.crc) {
    return corrupt("block checksum mismatch (bit rot?)");
  }

  DecodedBlock decoded;
  decoded.row_keys.reserve(block.num_rows);
  decoded.row_begin.reserve(block.num_rows + 1);
  decoded.entries.reserve(block.num_entries);
  decoded.row_begin.push_back(0);

  const std::byte* p = bytes.data();
  const std::byte* end = p + bytes.size();
  uint64_t total_entries = 0;
  for (uint32_t r = 0; r < block.num_rows; ++r) {
    const V4DirEntry& d = dir[block.first_dir + r];
    if (d.count == 0) return corrupt("empty row in directory");
    uint32_t prefix;
    if (!GetVarint32(&p, end, &prefix)) {
      return corrupt("truncated block (prefix count)");
    }
    if (prefix > d.count || (r == 0 && prefix != 0)) {
      return corrupt("bad row prefix count");
    }
    // The dictionary is row 0 of this block, already decoded into
    // `entries` at [0, row_begin[1]).
    size_t dict_len = r == 0 ? 0 : decoded.row_begin[1];
    if (prefix > dict_len) return corrupt("row prefix beyond dictionary");
    size_t start = decoded.entries.size();
    for (size_t i = 0; i < prefix; ++i) {
      decoded.entries.push_back(decoded.entries[i]);
    }
    bool have_prev = prefix > 0;
    uint64_t prev = have_prev ? decoded.entries[start + prefix - 1].center : 0;
    for (uint32_t i = prefix; i < d.count; ++i) {
      uint32_t delta, dist = 0;
      if (!GetVarint32(&p, end, &delta)) {
        return corrupt("truncated block (center delta)");
      }
      if (with_distance && !GetVarint32(&p, end, &dist)) {
        return corrupt("truncated block (distance)");
      }
      uint64_t center = have_prev ? prev + 1 + delta : delta;
      if (center > UINT32_MAX) return corrupt("center overflows 32 bits");
      decoded.entries.push_back(
          {static_cast<NodeId>(center), dist});
      prev = center;
      have_prev = true;
    }
    decoded.row_keys.push_back(d.key);
    decoded.row_begin.push_back(static_cast<uint32_t>(decoded.entries.size()));
    total_entries += d.count;
  }
  if (p != end) return corrupt("trailing bytes after last row");
  if (total_entries != block.num_entries) {
    return corrupt("block entry count mismatch");
  }
  decoded.BuildJoinMirrors();
  return decoded;
}

}  // namespace hopi::storage
