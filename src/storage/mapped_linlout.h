// Zero-copy, mmap-backed reader for LIN/LOUT files (v3 format).
//
// Where LinLoutStore::ReadFromFile copies every table row onto the heap
// and re-sorts the backward runs, MappedLinLoutStore maps the file
// read-only and answers queries straight out of the page cache: the
// forward sections are stored as (center, dist) pairs bit-identical to
// twohop::LabelEntry, so LinSpan/LoutSpan return borrowed spans over
// the mapping and the QueryEngine batch path joins them without a
// single row copy (engine::MappedLinLoutBackend wires this into the
// ReachabilityBackend borrow hook). The backward sections persisted by
// the v3 writer serve Descendants/Ancestors without rebuilding the
// backward index in memory.
//
// Open() fully validates the file first — header, trailing CRC-32,
// section bounds, directory sortedness — so a torn or bit-flipped file
// fails with Status::Corruption before any query can dereference it.
// On platforms without mmap (or when the kernel refuses the map) Open
// falls back to one buffered read of the whole file into a private
// heap image; every query path is identical, only the backing memory
// differs.
//
// A MappedLinLoutStore is immutable and therefore safe to share across
// threads once constructed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "storage/format.h"
#include "twohop/cover.h"
#include "util/mmap_file.h"
#include "util/result.h"

namespace hopi::storage {

struct MappedOpenOptions {
  /// When false, skip mmap and take the buffered-fallback path even
  /// where mmap is available (used by tests and benchmarks to compare
  /// the two modes; queries behave identically).
  bool prefer_mmap = true;
};

class MappedLinLoutStore {
 public:
  /// Opens and validates `path`. Errors: IOError (missing/unreadable
  /// file), Corruption (torn write, checksum mismatch, inconsistent
  /// sections), Unsupported (v1/v2 or future versions — v2 files are
  /// readable via LinLoutStore::ReadFromFile and migrate to v3 on the
  /// next WriteToFile).
  static Result<MappedLinLoutStore> Open(const std::string& path,
                                         MappedOpenOptions options = {});

  // ---- the paper's query shapes (parity with LinLoutStore) ----

  /// True iff id1 ->* id2 according to the stored cover (reflexive).
  bool TestConnection(NodeId id1, NodeId id2) const;

  /// Minimum connection length, nullopt when unconnected; 0 for every
  /// connected pair of a store written without distances.
  std::optional<uint32_t> MinDistance(NodeId id1, NodeId id2) const;

  /// All strict descendants of `id` (sorted), via the persisted
  /// backward LIN sections.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// All strict ancestors of `id` (sorted), via the persisted backward
  /// LOUT sections.
  std::vector<NodeId> Ancestors(NodeId id) const;

  // ---- zero-copy label access ----

  /// LIN(id) / LOUT(id) as spans borrowed from the file image, sorted
  /// by center; empty for nodes without rows. Valid for the lifetime of
  /// this store.
  std::span<const twohop::LabelEntry> LinSpan(NodeId id) const {
    return LookupRows(view_.lin_dir, view_.lin_rows, id);
  }
  std::span<const twohop::LabelEntry> LoutSpan(NodeId id) const {
    return LookupRows(view_.lout_dir, view_.lout_rows, id);
  }

  // ---- storage accounting (parity with LinLoutStore) ----

  uint64_t NumEntries() const {
    return view_.lin_rows.size() + view_.lout_rows.size();
  }
  uint64_t StorageIntegers() const {
    return NumEntries() * (2 + (with_distance() ? 1 : 0)) * 2;
  }
  bool with_distance() const { return view_.with_distance; }

  /// True when backed by an actual memory map; false on the buffered
  /// fallback path.
  bool mapped() const { return map_.has_value(); }

 private:
  MappedLinLoutStore() = default;

  // Exactly one of map_/buffer_ backs view_; both keep their data
  // pointer stable under move, so the spans in view_ survive moves.
  std::optional<MappedFile> map_;
  std::vector<std::byte> buffer_;
  FileView view_;
};

}  // namespace hopi::storage
