// Zero-copy, mmap-backed reader for LIN/LOUT files (v3 + v4 formats).
//
// Where LinLoutStore::ReadFromFile copies every table row onto the heap
// and re-sorts the backward runs, MappedLinLoutStore maps the file
// read-only and serves queries off the page cache. What that looks
// like depends on the format version:
//
//   v3 (raw rows)  — the forward sections are stored as (center, dist)
//     pairs bit-identical to twohop::LabelEntry, so LinSpan/LoutSpan
//     return borrowed spans over the mapping and the QueryEngine batch
//     path joins them without a single row copy
//     (engine::MappedLinLoutBackend wires this into the
//     ReachabilityBackend borrow hook).
//
//   v4 (block-compressed rows) — label rows live in compressed blocks
//     (storage/compress.h) and are decoded on demand: LinBlockHandle/
//     LoutBlockHandle name the block holding a node's row, DecodeBlock
//     materializes it as a shared, immutable DecodedBlock, and
//     DecodeLinRow/DecodeLoutRow pin one row. The engine caches the
//     decoded blocks by byte budget (engine/label_cache.h), so hot
//     rows stay as cheap as v3 borrows while the file itself can be
//     far bigger than RAM — Open touches only the metadata sections,
//     never the blobs.
//
// Open() validates before any query can dereference: header, section
// bounds, directory sortedness, and — per MappedOpenOptions — either
// the whole-file CRC-32 (the default; decode can then only fail if
// the file is tampered with after Open) or, for v4 lazy opens, the
// metadata CRC now plus each block's CRC at first decode. A torn or
// bit-flipped file fails with Status::Corruption; decode-time
// corruption surfaces through the Result-returning accessors, while
// the infallible conveniences (TestConnection, LinSpan, ...) degrade
// to "no rows" — never a crash or silently wrong rows.
//
// On platforms without mmap (or when the kernel refuses the map) Open
// falls back to one buffered read of the whole file into a private
// heap image; every query path is identical, only the backing memory
// differs.
//
// A MappedLinLoutStore is immutable and therefore safe to share across
// threads once constructed (block decoding allocates fresh
// DecodedBlocks; it never mutates the store).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "storage/compress.h"
#include "storage/format.h"
#include "twohop/cover.h"
#include "util/mmap_file.h"
#include "util/result.h"

namespace hopi::storage {

struct MappedOpenOptions {
  /// When false, skip mmap and take the buffered-fallback path even
  /// where mmap is available (used by tests and benchmarks to compare
  /// the two modes; queries behave identically).
  bool prefer_mmap = true;
  /// When false, a v4 open skips the whole-file checksum: the metadata
  /// CRC is still verified (structure is always trusted-after-check)
  /// but blob bytes wait for their per-block CRC at first decode — the
  /// lazy open for covers bigger than RAM. Ignored for v3, which has
  /// no per-block checksums to fall back on.
  bool verify_file_checksum = true;
};

/// One decoded label row pinned by the block that backs it: the span
/// aliases `block->entries`, so the row stays valid for as long as the
/// PinnedRow (or any copy of its block pointer) lives — independent of
/// any cache eviction. For v3 stores `block` is null and the span
/// borrows from the file image (store-lifetime) instead.
struct PinnedRow {
  std::span<const twohop::LabelEntry> entries;
  std::shared_ptr<const DecodedBlock> block;
};

class MappedLinLoutStore {
 public:
  /// Opens and validates `path`. Errors: IOError (missing/unreadable
  /// file), Corruption (torn write, checksum mismatch, inconsistent
  /// sections), Unsupported (v1/v2 or future versions — v2 files are
  /// readable via LinLoutStore::ReadFromFile and migrate forward on
  /// the next WriteToFile).
  static Result<MappedLinLoutStore> Open(const std::string& path,
                                         MappedOpenOptions options = {});

  // ---- the paper's query shapes (parity with LinLoutStore) ----

  /// True iff id1 ->* id2 according to the stored cover (reflexive).
  bool TestConnection(NodeId id1, NodeId id2) const;

  /// Minimum connection length, nullopt when unconnected; 0 for every
  /// connected pair of a store written without distances.
  std::optional<uint32_t> MinDistance(NodeId id1, NodeId id2) const;

  /// All strict descendants of `id` (sorted), via the persisted
  /// backward LIN sections.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// All strict ancestors of `id` (sorted), via the persisted backward
  /// LOUT sections.
  std::vector<NodeId> Ancestors(NodeId id) const;

  // ---- zero-copy label access (v3 stores) ----

  /// LIN(id) / LOUT(id) as spans borrowed from the file image, sorted
  /// by center; empty for nodes without rows. Valid for the lifetime
  /// of this store. Precondition: !compressed() — a v4 store has no
  /// raw rows to borrow and returns empty (use the block API below).
  std::span<const twohop::LabelEntry> LinSpan(NodeId id) const {
    if (compressed()) return {};
    return LookupRows(view_.lin_dir, view_.lin_rows, id);
  }
  std::span<const twohop::LabelEntry> LoutSpan(NodeId id) const {
    if (compressed()) return {};
    return LookupRows(view_.lout_dir, view_.lout_rows, id);
  }

  // ---- block-wise label access (v4 stores) ----
  //
  // A block handle names one compressed block: (section group << 32) |
  // block index, where the group is 0=LIN, 1=LOUT, 2=backward LIN,
  // 3=backward LOUT. Handles are dense per section and stable for the
  // store's lifetime — the engine uses them as cache keys.

  /// Handle of the block holding LIN(id) / LOUT(id); nullopt when the
  /// node has no rows on that side (or the store is not compressed).
  std::optional<uint64_t> LinBlockHandle(NodeId id) const;
  std::optional<uint64_t> LoutBlockHandle(NodeId id) const;

  /// Decodes one block (CRC + full structural validation). Errors:
  /// InvalidArgument (foreign handle), Corruption (bit rot — only
  /// reachable on lazy opens or post-Open tampering).
  Result<std::shared_ptr<const DecodedBlock>> DecodeBlock(
      uint64_t handle) const;

  /// Checked row access: LIN(id) / LOUT(id) decoded and pinned. A node
  /// without rows yields an engaged PinnedRow with an empty span. Also
  /// works on v3 stores (span into the image, null pin).
  Result<PinnedRow> DecodeLinRow(NodeId id) const;
  Result<PinnedRow> DecodeLoutRow(NodeId id) const;

  /// Decodes every block of every section once (discarding the rows):
  /// the full-integrity sweep a lazy open defers. OK for v3 stores
  /// (Open already verified everything).
  Status VerifyBlocks() const;

  // ---- storage accounting (parity with LinLoutStore) ----

  uint64_t NumEntries() const { return num_lin_entries_ + num_lout_entries_; }
  uint64_t StorageIntegers() const {
    return NumEntries() * (2 + (with_distance() ? 1 : 0)) * 2;
  }
  bool with_distance() const {
    return compressed() ? view4_.with_distance : view_.with_distance;
  }

  /// Format version this store was opened from (3 or 4).
  uint32_t format_version() const { return version_; }
  /// True for v4 stores (rows live in compressed blocks).
  bool compressed() const { return version_ == kFormatVersionV4; }
  /// On-disk size (bytes/entry accounting in the storage bench).
  uint64_t file_bytes() const { return file_bytes_; }

  /// True when backed by an actual memory map; false on the buffered
  /// fallback path.
  bool mapped() const { return map_.has_value(); }

 private:
  MappedLinLoutStore() = default;

  /// The four v4 label sections by handle group (0..3).
  const LabelSectionView* SectionForGroup(uint64_t group) const;
  /// Handle of the block holding `key`'s row in `group`'s section;
  /// nullopt when the key has no row there.
  std::optional<uint64_t> FindRow(uint64_t group, uint32_t key) const;
  Result<PinnedRow> DecodeForwardRow(uint64_t group, NodeId id) const;

  // Exactly one of map_/buffer_ backs the views; both keep their data
  // pointer stable under move, so the spans survive moves.
  std::optional<MappedFile> map_;
  std::vector<std::byte> buffer_;
  FileView view_;      // v3
  FileViewV4 view4_;   // v4
  uint32_t version_ = kFormatVersion;
  uint64_t num_lin_entries_ = 0;
  uint64_t num_lout_entries_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace hopi::storage
