#include "storage/mapped_linlout.h"

#include <algorithm>

namespace hopi::storage {

Result<MappedLinLoutStore> MappedLinLoutStore::Open(
    const std::string& path, MappedOpenOptions options) {
  MappedLinLoutStore store;
  if (options.prefer_mmap && MappedFile::Supported()) {
    auto map = MappedFile::Open(path);
    if (map.ok()) {
      store.map_.emplace(std::move(*map));
    } else if (!map.status().IsUnsupported()) {
      return map.status();  // missing/unreadable file: no fallback helps
    }
    // Unsupported (kernel refused the map): fall through to the
    // buffered path below.
  }
  std::span<const std::byte> image;
  if (store.map_) {
    image = {store.map_->data(), store.map_->size()};
  } else {
    HOPI_ASSIGN_OR_RETURN(store.buffer_, ReadFileImage(path));
    image = store.buffer_;
  }
  HOPI_ASSIGN_OR_RETURN(RawHeader header, ReadRawHeader(image, path));
  if (header.version == kLegacyFormatVersion) {
    return Status::Unsupported(
        "LIN/LOUT file " + path +
        " uses format v2 (no section table) — read it with "
        "LinLoutStore::ReadFromFile and WriteToFile to migrate to v3");
  }
  HOPI_ASSIGN_OR_RETURN(store.view_, ParseV3(image, path));
  return store;
}

bool MappedLinLoutStore::TestConnection(NodeId id1, NodeId id2) const {
  if (id1 == id2) return true;
  auto lout = LoutSpan(id1);
  auto lin = LinSpan(id2);
  return twohop::JoinLabelRanges(id1, id2, lout.data(), lout.size(),
                                 lin.data(), lin.size(),
                                 /*want_distance=*/false)
      .connected;
}

std::optional<uint32_t> MappedLinLoutStore::MinDistance(NodeId id1,
                                                        NodeId id2) const {
  if (id1 == id2) return 0;
  auto lout = LoutSpan(id1);
  auto lin = LinSpan(id2);
  return twohop::JoinLabelRanges(id1, id2, lout.data(), lout.size(),
                                 lin.data(), lin.size(),
                                 /*want_distance=*/true)
      .distance;
}

std::vector<NodeId> MappedLinLoutStore::Descendants(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);  // the center itself
    for (NodeId x : LookupRows(view_.lin_bwd_dir, view_.lin_bwd_ids, center)) {
      if (x != id) result.push_back(x);
    }
  };
  for (const twohop::LabelEntry& e : LoutSpan(id)) probe_center(e.center);
  // Implicit self center: nodes whose LIN mentions `id`.
  for (NodeId x : LookupRows(view_.lin_bwd_dir, view_.lin_bwd_ids, id)) {
    result.push_back(x);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<NodeId> MappedLinLoutStore::Ancestors(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);
    for (NodeId x :
         LookupRows(view_.lout_bwd_dir, view_.lout_bwd_ids, center)) {
      if (x != id) result.push_back(x);
    }
  };
  for (const twohop::LabelEntry& e : LinSpan(id)) probe_center(e.center);
  for (NodeId x : LookupRows(view_.lout_bwd_dir, view_.lout_bwd_ids, id)) {
    result.push_back(x);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hopi::storage
