#include "storage/mapped_linlout.h"

#include <algorithm>
#include <unordered_map>

#include "twohop/join_kernel.h"

namespace hopi::storage {

namespace {

/// Handle group ids (see the header's block-handle contract).
constexpr uint64_t kGroupLin = 0;
constexpr uint64_t kGroupLout = 1;
constexpr uint64_t kGroupLinBwd = 2;
constexpr uint64_t kGroupLoutBwd = 3;

uint64_t MakeHandle(uint64_t group, uint64_t block_index) {
  return (group << 32) | block_index;
}

/// Caches block decodes within one scalar query (Descendants probes
/// many centers whose backward rows often share a block).
class LocalBlockCache {
 public:
  explicit LocalBlockCache(const MappedLinLoutStore* store) : store_(store) {}

  /// Null on decode failure (the infallible query shapes degrade to
  /// "no rows"; checked access goes through the store's Result API).
  const DecodedBlock* Get(uint64_t handle) {
    auto it = blocks_.find(handle);
    if (it != blocks_.end()) return it->second.get();
    auto decoded = store_->DecodeBlock(handle);
    std::shared_ptr<const DecodedBlock> block =
        decoded.ok() ? std::move(*decoded) : nullptr;
    return blocks_.emplace(handle, std::move(block)).first->second.get();
  }

 private:
  const MappedLinLoutStore* store_;
  std::unordered_map<uint64_t, std::shared_ptr<const DecodedBlock>> blocks_;
};

}  // namespace

Result<MappedLinLoutStore> MappedLinLoutStore::Open(
    const std::string& path, MappedOpenOptions options) {
  MappedLinLoutStore store;
  if (options.prefer_mmap && MappedFile::Supported()) {
    auto map = MappedFile::Open(path);
    if (map.ok()) {
      store.map_.emplace(std::move(*map));
    } else if (!map.status().IsUnsupported()) {
      return map.status();  // missing/unreadable file: no fallback helps
    }
    // Unsupported (kernel refused the map): fall through to the
    // buffered path below.
  }
  std::span<const std::byte> image;
  if (store.map_) {
    image = {store.map_->data(), store.map_->size()};
  } else {
    HOPI_ASSIGN_OR_RETURN(store.buffer_, ReadFileImage(path));
    image = store.buffer_;
  }
  store.file_bytes_ = image.size();
  HOPI_ASSIGN_OR_RETURN(RawHeader header, ReadRawHeader(image, path));
  if (header.version == kLegacyFormatVersion) {
    return Status::Unsupported(
        "LIN/LOUT file " + path +
        " uses format v2 (no section table) — read it with "
        "LinLoutStore::ReadFromFile and WriteToFile to migrate to v3");
  }
  if (header.version == kFormatVersionV4) {
    ParseV4Options parse_options;
    parse_options.verify_file_checksum = options.verify_file_checksum;
    HOPI_ASSIGN_OR_RETURN(store.view4_,
                          ParseV4(image, path, parse_options));
    store.version_ = kFormatVersionV4;
    store.num_lin_entries_ = store.view4_.lin.TotalEntries();
    store.num_lout_entries_ = store.view4_.lout.TotalEntries();
    return store;
  }
  HOPI_ASSIGN_OR_RETURN(store.view_, ParseV3(image, path));
  store.version_ = kFormatVersion;
  store.num_lin_entries_ = store.view_.lin_rows.size();
  store.num_lout_entries_ = store.view_.lout_rows.size();
  return store;
}

// ---- v4 block access ----

const LabelSectionView* MappedLinLoutStore::SectionForGroup(
    uint64_t group) const {
  switch (group) {
    case kGroupLin:
      return &view4_.lin;
    case kGroupLout:
      return &view4_.lout;
    case kGroupLinBwd:
      return &view4_.lin_bwd;
    case kGroupLoutBwd:
      return &view4_.lout_bwd;
    default:
      return nullptr;
  }
}

std::optional<uint64_t> MappedLinLoutStore::FindRow(uint64_t group,
                                                   uint32_t key) const {
  if (!compressed()) return std::nullopt;
  const LabelSectionView* section = SectionForGroup(group);
  // Directory lookup: is there a row for this key at all?
  size_t lo = 0, hi = section->dir.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (section->dir[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == section->dir.size() || section->dir[lo].key != key) {
    return std::nullopt;
  }
  // Block lookup: the last block whose first_dir <= the row's index.
  // Blocks tile the directory (ParseV4 verified), so this block holds
  // the row.
  size_t blo = 0, bhi = section->blocks.size();
  while (blo < bhi) {
    size_t mid = blo + (bhi - blo) / 2;
    if (section->blocks[mid].first_dir <= lo) {
      blo = mid + 1;
    } else {
      bhi = mid;
    }
  }
  return MakeHandle(group, blo - 1);
}

std::optional<uint64_t> MappedLinLoutStore::LinBlockHandle(NodeId id) const {
  return FindRow(kGroupLin, id);
}

std::optional<uint64_t> MappedLinLoutStore::LoutBlockHandle(NodeId id) const {
  return FindRow(kGroupLout, id);
}

Result<std::shared_ptr<const DecodedBlock>> MappedLinLoutStore::DecodeBlock(
    uint64_t handle) const {
  if (!compressed()) {
    return Status::InvalidArgument(
        "block handles only exist for v4 (compressed) stores");
  }
  const uint64_t group = handle >> 32;
  const uint64_t index = handle & 0xFFFFFFFFu;
  const LabelSectionView* section = SectionForGroup(group);
  if (section == nullptr || index >= section->blocks.size()) {
    return Status::InvalidArgument("unknown block handle " +
                                   std::to_string(handle));
  }
  // Backward sections are dist-less regardless of the store flag.
  const bool with_distance =
      view4_.with_distance && (group == kGroupLin || group == kGroupLout);
  HOPI_ASSIGN_OR_RETURN(
      DecodedBlock decoded,
      DecodeLabelBlock(section->blob, section->dir, section->blocks[index],
                       with_distance,
                       "block " + std::to_string(index) + " of section group " +
                           std::to_string(group)));
  return std::make_shared<const DecodedBlock>(std::move(decoded));
}

Result<PinnedRow> MappedLinLoutStore::DecodeForwardRow(uint64_t group,
                                                       NodeId id) const {
  if (!compressed()) {
    return PinnedRow{group == kGroupLin ? LinSpan(id) : LoutSpan(id),
                     nullptr};
  }
  std::optional<uint64_t> handle = FindRow(group, id);
  if (!handle) return PinnedRow{};  // no rows: engaged, empty
  HOPI_ASSIGN_OR_RETURN(std::shared_ptr<const DecodedBlock> block,
                        DecodeBlock(*handle));
  PinnedRow row;
  row.entries = block->RowFor(id);
  row.block = std::move(block);
  return row;
}

Result<PinnedRow> MappedLinLoutStore::DecodeLinRow(NodeId id) const {
  return DecodeForwardRow(kGroupLin, id);
}

Result<PinnedRow> MappedLinLoutStore::DecodeLoutRow(NodeId id) const {
  return DecodeForwardRow(kGroupLout, id);
}

Status MappedLinLoutStore::VerifyBlocks() const {
  if (!compressed()) return Status::OK();
  for (uint64_t group = 0; group < 4; ++group) {
    const LabelSectionView* section = SectionForGroup(group);
    for (size_t i = 0; i < section->blocks.size(); ++i) {
      HOPI_RETURN_NOT_OK(DecodeBlock(MakeHandle(group, i)).status());
    }
  }
  return Status::OK();
}

// ---- the paper's query shapes ----

bool MappedLinLoutStore::TestConnection(NodeId id1, NodeId id2) const {
  if (id1 == id2) return true;
  if (!compressed()) {
    auto lout = LoutSpan(id1);
    auto lin = LinSpan(id2);
    return twohop::JoinViews(
               id1, id2,
               twohop::JoinView::FromEntries(lout.data(), lout.size()),
               twohop::JoinView::FromEntries(lin.data(), lin.size()),
               /*want_distance=*/false)
        .connected;
  }
  auto lout = DecodeLoutRow(id1);
  auto lin = DecodeLinRow(id2);
  if (!lout.ok() || !lin.ok()) return false;  // post-Open corruption only
  return twohop::JoinViews(
             id1, id2,
             twohop::JoinView::FromEntries(lout->entries.data(),
                                           lout->entries.size()),
             twohop::JoinView::FromEntries(lin->entries.data(),
                                           lin->entries.size()),
             /*want_distance=*/false)
      .connected;
}

std::optional<uint32_t> MappedLinLoutStore::MinDistance(NodeId id1,
                                                        NodeId id2) const {
  if (id1 == id2) return 0;
  if (!compressed()) {
    auto lout = LoutSpan(id1);
    auto lin = LinSpan(id2);
    return twohop::JoinViews(
               id1, id2,
               twohop::JoinView::FromEntries(lout.data(), lout.size()),
               twohop::JoinView::FromEntries(lin.data(), lin.size()),
               /*want_distance=*/true)
        .distance;
  }
  auto lout = DecodeLoutRow(id1);
  auto lin = DecodeLinRow(id2);
  if (!lout.ok() || !lin.ok()) return std::nullopt;
  return twohop::JoinViews(
             id1, id2,
             twohop::JoinView::FromEntries(lout->entries.data(),
                                           lout->entries.size()),
             twohop::JoinView::FromEntries(lin->entries.data(),
                                           lin->entries.size()),
             /*want_distance=*/true)
      .distance;
}

std::vector<NodeId> MappedLinLoutStore::Descendants(NodeId id) const {
  std::vector<NodeId> result;
  if (!compressed()) {
    auto probe_center = [this, &result, id](NodeId center) {
      if (center != id) result.push_back(center);  // the center itself
      for (NodeId x :
           LookupRows(view_.lin_bwd_dir, view_.lin_bwd_ids, center)) {
        if (x != id) result.push_back(x);
      }
    };
    for (const twohop::LabelEntry& e : LoutSpan(id)) probe_center(e.center);
    // Implicit self center: nodes whose LIN mentions `id`.
    for (NodeId x : LookupRows(view_.lin_bwd_dir, view_.lin_bwd_ids, id)) {
      result.push_back(x);
    }
  } else {
    LocalBlockCache blocks(this);
    auto backward_row = [this, &blocks](NodeId center) {
      std::span<const twohop::LabelEntry> none;
      std::optional<uint64_t> handle = FindRow(kGroupLinBwd, center);
      if (!handle) return none;
      const DecodedBlock* block = blocks.Get(*handle);
      return block == nullptr ? none : block->RowFor(center);
    };
    auto probe_center = [&result, &backward_row, id](NodeId center) {
      if (center != id) result.push_back(center);
      for (const twohop::LabelEntry& e : backward_row(center)) {
        if (e.center != id) result.push_back(e.center);
      }
    };
    auto lout = DecodeLoutRow(id);
    if (lout.ok()) {
      for (const twohop::LabelEntry& e : lout->entries) {
        probe_center(e.center);
      }
    }
    for (const twohop::LabelEntry& e : backward_row(id)) {
      result.push_back(e.center);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<NodeId> MappedLinLoutStore::Ancestors(NodeId id) const {
  std::vector<NodeId> result;
  if (!compressed()) {
    auto probe_center = [this, &result, id](NodeId center) {
      if (center != id) result.push_back(center);
      for (NodeId x :
           LookupRows(view_.lout_bwd_dir, view_.lout_bwd_ids, center)) {
        if (x != id) result.push_back(x);
      }
    };
    for (const twohop::LabelEntry& e : LinSpan(id)) probe_center(e.center);
    for (NodeId x : LookupRows(view_.lout_bwd_dir, view_.lout_bwd_ids, id)) {
      result.push_back(x);
    }
  } else {
    LocalBlockCache blocks(this);
    auto backward_row = [this, &blocks](NodeId center) {
      std::span<const twohop::LabelEntry> none;
      std::optional<uint64_t> handle = FindRow(kGroupLoutBwd, center);
      if (!handle) return none;
      const DecodedBlock* block = blocks.Get(*handle);
      return block == nullptr ? none : block->RowFor(center);
    };
    auto probe_center = [&result, &backward_row, id](NodeId center) {
      if (center != id) result.push_back(center);
      for (const twohop::LabelEntry& e : backward_row(center)) {
        if (e.center != id) result.push_back(e.center);
      }
    };
    auto lin = DecodeLinRow(id);
    if (lin.ok()) {
      for (const twohop::LabelEntry& e : lin->entries) {
        probe_center(e.center);
      }
    }
    for (const twohop::LabelEntry& e : backward_row(id)) {
      result.push_back(e.center);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hopi::storage
