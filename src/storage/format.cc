#include "storage/format.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "storage/linlout.h"
#include "util/checksum.h"

#if defined(__unix__) || defined(__APPLE__)
#define HOPI_HAS_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define HOPI_HAS_POSIX_IO 0
#endif

namespace hopi::storage {

// The spec (docs/FILE_FORMAT.md) fixes all integers as little-endian;
// the implementation reads/writes native integers, so enforce the
// match instead of silently producing byte-swapped files.
static_assert(std::endian::native == std::endian::little,
              "LIN/LOUT files are little-endian; this port needs swaps");

namespace {

// v1 files started with the 8-byte magic "HOPILL01": bytes 4..8 parse
// as this constant where v2+ store the version number.
constexpr uint32_t kV1MagicTail = 0x31304C4Cu;  // "LL01"

void PutU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t Align8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

/// Groups a sorted run into directory entries; `key` extracts the group
/// key (id for forward runs, center for backward runs).
template <typename KeyFn>
std::vector<DirEntry> BuildDir(std::span<const TableRow> run, KeyFn key) {
  std::vector<DirEntry> dir;
  size_t i = 0;
  while (i < run.size()) {
    uint32_t k = key(run[i]);
    size_t j = i;
    while (j < run.size() && key(run[j]) == k) ++j;
    dir.push_back({k, static_cast<uint32_t>(j - i), i});
    i = j;
  }
  return dir;
}

/// Shared validation of one (directory, rows) pair: keys strictly
/// ascending, begin indices exactly partitioning the rows section, and
/// each group's payload strictly ascending (`payload_key` extracts the
/// sort key of a row).
template <typename Rows, typename PayloadKey>
bool DirConsistent(std::span<const DirEntry> dir, std::span<const Rows> rows,
                   PayloadKey payload_key) {
  uint64_t running = 0;
  uint32_t prev_key = 0;
  for (size_t e = 0; e < dir.size(); ++e) {
    const DirEntry& d = dir[e];
    if (e > 0 && d.key <= prev_key) return false;
    prev_key = d.key;
    if (d.begin != running || d.count == 0) return false;
    if (d.count > rows.size() - running) return false;
    running += d.count;
    for (uint64_t r = d.begin + 1; r < d.begin + d.count; ++r) {
      if (payload_key(rows[r - 1]) >= payload_key(rows[r])) return false;
    }
  }
  return running == rows.size();
}

/// CRC-32 over [0, meta_end) of a v4 image with the meta_crc field
/// (bytes [16, 20)) treated as zero — computed identically by writer
/// and reader so the stored value can live inside the sealed range.
uint32_t ComputeMetaCrc(std::span<const std::byte> image, uint64_t meta_end) {
  const uint32_t zero = 0;
  uint32_t crc = Crc32(image.data(), 16);
  crc = Crc32(&zero, sizeof(zero), crc);
  crc = Crc32(image.data() + 20, meta_end - 20, crc);
  return crc;
}

/// Validates one v4 label section's metadata: directory sortedness and
/// block-table tiling (blocks cover the dir rows and the blob bytes
/// exactly, in order, gap-free). Blob *contents* are not touched —
/// they are sealed per block.
bool SectionConsistent(const LabelSectionView& s) {
  for (size_t e = 0; e < s.dir.size(); ++e) {
    if (e > 0 && s.dir[e].key <= s.dir[e - 1].key) return false;
    if (s.dir[e].count == 0) return false;
  }
  uint64_t next_dir = 0;
  uint64_t next_byte = 0;
  for (const V4BlockEntry& b : s.blocks) {
    if (b.first_dir != next_dir || b.num_rows == 0 ||
        b.num_rows > s.dir.size() - next_dir) {
      return false;
    }
    if (b.blob_offset != next_byte || b.blob_bytes == 0 ||
        b.blob_bytes > s.blob.size() - next_byte) {
      return false;
    }
    uint64_t entries = 0;
    for (uint64_t r = b.first_dir; r < b.first_dir + b.num_rows; ++r) {
      entries += s.dir[r].count;
    }
    if (entries != b.num_entries) return false;
    next_dir += b.num_rows;
    next_byte += b.blob_bytes;
  }
  return next_dir == s.dir.size() && next_byte == s.blob.size();
}

}  // namespace

Result<RawHeader> ReadRawHeader(std::span<const std::byte> image,
                                const std::string& path) {
  if (image.size() < 4 ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a HOPI LIN/LOUT file (bad magic): " +
                              path);
  }
  if (image.size() < 12) {
    return Status::Corruption("truncated header in " + path);
  }
  RawHeader header;
  header.version = GetU32(image.data() + 4);
  header.flags = GetU32(image.data() + 8);
  if (header.version == kV1MagicTail) {
    return Status::Unsupported(
        "LIN/LOUT file " + path +
        " uses the pre-versioned v1 layout (magic \"HOPILL01\") — "
        "rebuild the store from the cover");
  }
  return header;
}

Result<FileView> ParseV3(std::span<const std::byte> image,
                         const std::string& path) {
  HOPI_ASSIGN_OR_RETURN(RawHeader header, ReadRawHeader(image, path));
  if (header.version != kFormatVersion) {
    return Status::Unsupported(
        "LIN/LOUT file " + path + " has format version " +
        std::to_string(header.version) + "; this reader needs version " +
        std::to_string(kFormatVersion));
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    return Status::Corruption("unknown header flags in " + path);
  }
  if (image.size() < kHeaderBytes + kTrailerBytes) {
    return Status::Corruption("truncated v3 header in " + path);
  }
  if (GetU32(image.data() + 12) != kHeaderBytes) {
    return Status::Corruption("bad header size field in " + path);
  }
  // Seal first: the trailing checksum covers every byte before it, so a
  // torn or bit-flipped file fails here before any field is trusted.
  const std::byte* trailer = image.data() + image.size() - kTrailerBytes;
  if (std::memcmp(trailer + 4, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Corruption("missing checksum trailer (torn write?) in " +
                              path);
  }
  uint32_t actual = Crc32(image.data(), image.size() - kTrailerBytes);
  if (actual != GetU32(trailer)) {
    return Status::Corruption("checksum mismatch in " + path +
                              " (torn write or bit rot)");
  }
  // Section table: in-order, 8-aligned, inside [header, trailer).
  SectionRange sections[kNumSections];
  uint64_t prev_end = kHeaderBytes;
  const uint64_t data_end = image.size() - kTrailerBytes;
  constexpr size_t kElemSize[kNumSections] = {
      sizeof(DirEntry), sizeof(twohop::LabelEntry),
      sizeof(DirEntry), sizeof(twohop::LabelEntry),
      sizeof(DirEntry), sizeof(uint32_t),
      sizeof(DirEntry), sizeof(uint32_t)};
  for (size_t s = 0; s < kNumSections; ++s) {
    sections[s].offset = GetU64(image.data() + 16 + s * 16);
    sections[s].length = GetU64(image.data() + 16 + s * 16 + 8);
    if (sections[s].offset % 8 != 0 || sections[s].offset < prev_end ||
        sections[s].length > data_end ||
        sections[s].offset > data_end - sections[s].length ||
        sections[s].length % kElemSize[s] != 0) {
      return Status::Corruption("section table out of bounds in " + path);
    }
    prev_end = sections[s].offset + sections[s].length;
  }

  FileView view;
  view.flags = header.flags;
  view.with_distance = (header.flags & kFlagDistance) != 0;
  auto dir_span = [&](Section s) {
    return std::span<const DirEntry>(
        reinterpret_cast<const DirEntry*>(image.data() + sections[s].offset),
        sections[s].length / sizeof(DirEntry));
  };
  auto row_span = [&](Section s) {
    return std::span<const twohop::LabelEntry>(
        reinterpret_cast<const twohop::LabelEntry*>(image.data() +
                                                    sections[s].offset),
        sections[s].length / sizeof(twohop::LabelEntry));
  };
  auto id_span = [&](Section s) {
    return std::span<const uint32_t>(
        reinterpret_cast<const uint32_t*>(image.data() + sections[s].offset),
        sections[s].length / sizeof(uint32_t));
  };
  view.lin_dir = dir_span(kLinDir);
  view.lin_rows = row_span(kLinRows);
  view.lout_dir = dir_span(kLoutDir);
  view.lout_rows = row_span(kLoutRows);
  view.lin_bwd_dir = dir_span(kLinBwdDir);
  view.lin_bwd_ids = id_span(kLinBwdIds);
  view.lout_bwd_dir = dir_span(kLoutBwdDir);
  view.lout_bwd_ids = id_span(kLoutBwdIds);

  auto by_center = [](const twohop::LabelEntry& e) { return e.center; };
  auto by_id = [](uint32_t id) { return id; };
  if (!DirConsistent(view.lin_dir, view.lin_rows, by_center) ||
      !DirConsistent(view.lout_dir, view.lout_rows, by_center) ||
      !DirConsistent(view.lin_bwd_dir, view.lin_bwd_ids, by_id) ||
      !DirConsistent(view.lout_bwd_dir, view.lout_bwd_ids, by_id) ||
      view.lin_bwd_ids.size() != view.lin_rows.size() ||
      view.lout_bwd_ids.size() != view.lout_rows.size()) {
    return Status::Corruption("inconsistent label directories in " + path);
  }
  return view;
}

Result<FileViewV4> ParseV4(std::span<const std::byte> image,
                           const std::string& path, ParseV4Options options) {
  HOPI_ASSIGN_OR_RETURN(RawHeader header, ReadRawHeader(image, path));
  if (header.version != kFormatVersionV4) {
    return Status::Unsupported(
        "LIN/LOUT file " + path + " has format version " +
        std::to_string(header.version) + "; this reader needs version " +
        std::to_string(kFormatVersionV4));
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    return Status::Corruption("unknown header flags in " + path);
  }
  if (image.size() < kHeaderBytesV4 + kTrailerBytes) {
    return Status::Corruption("truncated v4 header in " + path);
  }
  if (GetU32(image.data() + 12) != kHeaderBytesV4) {
    return Status::Corruption("bad header size field in " + path);
  }
  // The trailer magic is checked even on lazy opens (it costs nothing
  // and catches most torn writes); the full-file checksum is the
  // verified-open guarantee.
  const std::byte* trailer = image.data() + image.size() - kTrailerBytes;
  if (std::memcmp(trailer + 4, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Corruption("missing checksum trailer (torn write?) in " +
                              path);
  }
  if (options.verify_file_checksum) {
    uint32_t actual = Crc32(image.data(), image.size() - kTrailerBytes);
    if (actual != GetU32(trailer)) {
      return Status::Corruption("checksum mismatch in " + path +
                                " (torn write or bit rot)");
    }
  }
  // Section table: in-order, 8-aligned, inside [header, trailer), with
  // every metadata section before every blob section.
  SectionRange sections[kNumSectionsV4];
  uint64_t prev_end = kHeaderBytesV4;
  const uint64_t data_end = image.size() - kTrailerBytes;
  constexpr size_t kElemSize[kNumSectionsV4] = {
      sizeof(V4DirEntry), sizeof(V4BlockEntry),
      sizeof(V4DirEntry), sizeof(V4BlockEntry),
      sizeof(V4DirEntry), sizeof(V4BlockEntry),
      sizeof(V4DirEntry), sizeof(V4BlockEntry),
      1, 1, 1, 1};
  for (size_t s = 0; s < kNumSectionsV4; ++s) {
    sections[s].offset = GetU64(image.data() + 24 + s * 16);
    sections[s].length = GetU64(image.data() + 24 + s * 16 + 8);
    if (sections[s].offset % 8 != 0 || sections[s].offset < prev_end ||
        sections[s].length > data_end ||
        sections[s].offset > data_end - sections[s].length ||
        sections[s].length % kElemSize[s] != 0) {
      return Status::Corruption("section table out of bounds in " + path);
    }
    prev_end = sections[s].offset + sections[s].length;
  }
  // Everything structural lives in [0, first blob); the metadata CRC
  // seals it, so even a lazy open never trusts a flipped dir key or
  // block offset.
  const uint64_t meta_end = sections[kV4LinBlob].offset;
  if (ComputeMetaCrc(image, meta_end) != GetU32(image.data() + 16)) {
    return Status::Corruption("metadata checksum mismatch in " + path);
  }

  FileViewV4 view;
  view.flags = header.flags;
  view.with_distance = (header.flags & kFlagDistance) != 0;
  auto dir_span = [&](SectionV4 s) {
    return std::span<const V4DirEntry>(
        reinterpret_cast<const V4DirEntry*>(image.data() +
                                            sections[s].offset),
        sections[s].length / sizeof(V4DirEntry));
  };
  auto block_span = [&](SectionV4 s) {
    return std::span<const V4BlockEntry>(
        reinterpret_cast<const V4BlockEntry*>(image.data() +
                                              sections[s].offset),
        sections[s].length / sizeof(V4BlockEntry));
  };
  auto blob_span = [&](SectionV4 s) {
    return image.subspan(sections[s].offset, sections[s].length);
  };
  view.lin = {dir_span(kV4LinDir), block_span(kV4LinBlocks),
              blob_span(kV4LinBlob)};
  view.lout = {dir_span(kV4LoutDir), block_span(kV4LoutBlocks),
               blob_span(kV4LoutBlob)};
  view.lin_bwd = {dir_span(kV4LinBwdDir), block_span(kV4LinBwdBlocks),
                  blob_span(kV4LinBwdBlob)};
  view.lout_bwd = {dir_span(kV4LoutBwdDir), block_span(kV4LoutBwdBlocks),
                   blob_span(kV4LoutBwdBlob)};

  if (!SectionConsistent(view.lin) || !SectionConsistent(view.lout) ||
      !SectionConsistent(view.lin_bwd) ||
      !SectionConsistent(view.lout_bwd) ||
      view.lin_bwd.TotalEntries() != view.lin.TotalEntries() ||
      view.lout_bwd.TotalEntries() != view.lout.TotalEntries()) {
    return Status::Corruption("inconsistent label directories in " + path);
  }
  return view;
}

std::vector<std::byte> BuildFileImage(std::span<const TableRow> lin_fwd,
                                      std::span<const TableRow> lout_fwd,
                                      std::span<const TableRow> lin_bwd,
                                      std::span<const TableRow> lout_bwd,
                                      bool with_distance) {
  auto by_id = [](const TableRow& r) { return r.id; };
  auto by_center = [](const TableRow& r) { return r.center; };
  std::vector<DirEntry> lin_dir = BuildDir(lin_fwd, by_id);
  std::vector<DirEntry> lout_dir = BuildDir(lout_fwd, by_id);
  std::vector<DirEntry> lin_bwd_dir = BuildDir(lin_bwd, by_center);
  std::vector<DirEntry> lout_bwd_dir = BuildDir(lout_bwd, by_center);

  const uint64_t lengths[kNumSections] = {
      lin_dir.size() * sizeof(DirEntry),
      lin_fwd.size() * sizeof(twohop::LabelEntry),
      lout_dir.size() * sizeof(DirEntry),
      lout_fwd.size() * sizeof(twohop::LabelEntry),
      lin_bwd_dir.size() * sizeof(DirEntry),
      lin_bwd.size() * sizeof(uint32_t),
      lout_bwd_dir.size() * sizeof(DirEntry),
      lout_bwd.size() * sizeof(uint32_t)};
  SectionRange sections[kNumSections];
  uint64_t end = kHeaderBytes;
  for (size_t s = 0; s < kNumSections; ++s) {
    sections[s].offset = Align8(end);
    sections[s].length = lengths[s];
    end = sections[s].offset + sections[s].length;
  }
  std::vector<std::byte> image(Align8(end) + kTrailerBytes, std::byte{0});

  std::memcpy(image.data(), kMagic, sizeof(kMagic));
  PutU32(image.data() + 4, kFormatVersion);
  PutU32(image.data() + 8, with_distance ? kFlagDistance : 0);
  PutU32(image.data() + 12, kHeaderBytes);
  for (size_t s = 0; s < kNumSections; ++s) {
    PutU64(image.data() + 16 + s * 16, sections[s].offset);
    PutU64(image.data() + 16 + s * 16 + 8, sections[s].length);
  }

  auto write_dir = [&](Section s, const std::vector<DirEntry>& dir) {
    // An empty directory (a store with no labels on one side) has a
    // null data() — passing that to memcpy is UB even for 0 bytes.
    if (dir.empty()) return;
    std::memcpy(image.data() + sections[s].offset, dir.data(),
                dir.size() * sizeof(DirEntry));
  };
  auto write_rows = [&](Section s, std::span<const TableRow> run) {
    std::byte* p = image.data() + sections[s].offset;
    for (const TableRow& r : run) {
      PutU32(p, r.center);
      PutU32(p + 4, r.dist);
      p += sizeof(twohop::LabelEntry);
    }
  };
  auto write_ids = [&](Section s, std::span<const TableRow> run) {
    std::byte* p = image.data() + sections[s].offset;
    for (const TableRow& r : run) {
      PutU32(p, r.id);
      p += sizeof(uint32_t);
    }
  };
  write_dir(kLinDir, lin_dir);
  write_rows(kLinRows, lin_fwd);
  write_dir(kLoutDir, lout_dir);
  write_rows(kLoutRows, lout_fwd);
  write_dir(kLinBwdDir, lin_bwd_dir);
  write_ids(kLinBwdIds, lin_bwd);
  write_dir(kLoutBwdDir, lout_bwd_dir);
  write_ids(kLoutBwdIds, lout_bwd);

  std::byte* trailer = image.data() + image.size() - kTrailerBytes;
  PutU32(trailer, Crc32(image.data(), image.size() - kTrailerBytes));
  std::memcpy(trailer + 4, kTrailerMagic, sizeof(kTrailerMagic));
  return image;
}

namespace {

/// Regroups a sorted table run into encoder rows. `forward` selects
/// the grouping key (id vs center) and the entry payload (center+dist
/// vs id, dist-less). `buf` backs the returned spans and must outlive
/// them; it is reserved up front so pushes never reallocate.
std::vector<LabelRowRef> GroupRun(std::span<const TableRow> run, bool forward,
                                  std::vector<twohop::LabelEntry>* buf) {
  buf->clear();
  buf->reserve(run.size());
  std::vector<LabelRowRef> rows;
  size_t i = 0;
  while (i < run.size()) {
    uint32_t key = forward ? run[i].id : run[i].center;
    size_t start = buf->size();
    size_t j = i;
    while (j < run.size() && (forward ? run[j].id : run[j].center) == key) {
      buf->push_back(forward
                         ? twohop::LabelEntry{run[j].center, run[j].dist}
                         : twohop::LabelEntry{run[j].id, 0});
      ++j;
    }
    rows.push_back({key, std::span<const twohop::LabelEntry>(
                             buf->data() + start, j - i)});
    i = j;
  }
  return rows;
}

}  // namespace

std::vector<std::byte> BuildFileImageV4(std::span<const TableRow> lin_fwd,
                                        std::span<const TableRow> lout_fwd,
                                        std::span<const TableRow> lin_bwd,
                                        std::span<const TableRow> lout_bwd,
                                        bool with_distance,
                                        const CompressOptions& compress) {
  std::vector<twohop::LabelEntry> buf;
  EncodedLabelSection encoded[4];
  const std::span<const TableRow> runs[4] = {lin_fwd, lout_fwd, lin_bwd,
                                             lout_bwd};
  for (size_t side = 0; side < 4; ++side) {
    bool forward = side < 2;
    std::vector<LabelRowRef> rows = GroupRun(runs[side], forward, &buf);
    // Backward sections are dist-less: the ids are the payload.
    encoded[side] =
        EncodeLabelRows(rows, forward && with_distance, compress);
  }

  // Section lengths in file order: the four (dir, blocks) metadata
  // pairs, then the four blobs (the meta-CRC ordering invariant).
  uint64_t lengths[kNumSectionsV4];
  for (size_t side = 0; side < 4; ++side) {
    lengths[2 * side] = encoded[side].dir.size() * sizeof(V4DirEntry);
    lengths[2 * side + 1] =
        encoded[side].blocks.size() * sizeof(V4BlockEntry);
    lengths[8 + side] = encoded[side].blob.size();
  }
  SectionRange sections[kNumSectionsV4];
  uint64_t end = kHeaderBytesV4;
  for (size_t s = 0; s < kNumSectionsV4; ++s) {
    sections[s].offset = Align8(end);
    sections[s].length = lengths[s];
    end = sections[s].offset + sections[s].length;
  }
  std::vector<std::byte> image(Align8(end) + kTrailerBytes, std::byte{0});

  std::memcpy(image.data(), kMagic, sizeof(kMagic));
  PutU32(image.data() + 4, kFormatVersionV4);
  PutU32(image.data() + 8, with_distance ? kFlagDistance : 0);
  PutU32(image.data() + 12, kHeaderBytesV4);
  // meta_crc (offset 16) and the reserved word stay zero for now; the
  // CRC is patched in once the metadata bytes are final.
  for (size_t s = 0; s < kNumSectionsV4; ++s) {
    PutU64(image.data() + 24 + s * 16, sections[s].offset);
    PutU64(image.data() + 24 + s * 16 + 8, sections[s].length);
  }

  auto write_bytes = [&](size_t s, const void* data, size_t n) {
    if (n == 0) return;  // empty vectors may have null data()
    std::memcpy(image.data() + sections[s].offset, data, n);
  };
  for (size_t side = 0; side < 4; ++side) {
    write_bytes(2 * side, encoded[side].dir.data(),
                encoded[side].dir.size() * sizeof(V4DirEntry));
    write_bytes(2 * side + 1, encoded[side].blocks.data(),
                encoded[side].blocks.size() * sizeof(V4BlockEntry));
    write_bytes(8 + side, encoded[side].blob.data(),
                encoded[side].blob.size());
  }

  PutU32(image.data() + 16,
         ComputeMetaCrc(image, sections[kV4LinBlob].offset));
  std::byte* trailer = image.data() + image.size() - kTrailerBytes;
  PutU32(trailer, Crc32(image.data(), image.size() - kTrailerBytes));
  std::memcpy(trailer + 4, kTrailerMagic, sizeof(kTrailerMagic));
  return image;
}

#if HOPI_HAS_POSIX_IO

Status AtomicWriteFile(const std::string& path,
                       std::span<const std::byte> image) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot open " + tmp);
  const std::byte* p = image.data();
  size_t left = image.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // Data must be on disk before the rename publishes it: a crash after
  // the rename but before a data flush would otherwise leave a complete-
  // looking file full of unwritten pages.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("cannot fsync " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  // And the rename itself must be durable: fsync the containing
  // directory so a crash cannot resurrect the old directory entry.
  // From here on the new file IS published — failures below must say
  // so, because the caller can no longer assume the old file survived.
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::IOError("cannot open directory " + dir +
                           " — new file " + path +
                           " is in place but the rename's durability "
                           "is unconfirmed");
  }
  if (::fsync(dfd) != 0) {
    ::close(dfd);
    return Status::IOError("cannot fsync directory " + dir +
                           " — new file " + path +
                           " is in place but the rename's durability "
                           "is unconfirmed");
  }
  ::close(dfd);
  return Status::OK();
}

#else  // !HOPI_HAS_POSIX_IO

Status AtomicWriteFile(const std::string& path,
                       std::span<const std::byte> image) {
  // Best effort without POSIX durability primitives: still stage into a
  // sibling temp file so an interrupted write never truncates `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  bool ok = image.empty() ||
            std::fwrite(image.data(), image.size(), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  std::remove(path.c_str());  // std::rename does not overwrite everywhere
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

#endif  // HOPI_HAS_POSIX_IO

Result<std::vector<std::byte>> ReadFileImage(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long end = std::ftell(f);
  if (end < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of " + path);
  }
  std::vector<std::byte> image(static_cast<size_t>(end));
  bool ok = image.empty() ||
            std::fread(image.data(), image.size(), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::IOError("cannot read " + path);
  return image;
}

Result<FormatInfo> InspectFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::byte header[kHeaderBytesV4];  // the largest header of any version
  size_t got = std::fread(header, 1, sizeof(header), f);
  std::fseek(f, 0, SEEK_END);
  long end = std::ftell(f);
  std::fclose(f);
  auto raw = ReadRawHeader({header, got}, path);
  if (!raw.ok()) return raw.status();
  FormatInfo info;
  info.version = raw->version;
  info.flags = raw->flags;
  info.file_bytes = end > 0 ? static_cast<uint64_t>(end) : 0;
  size_t num_sections, table_at, header_bytes;
  if (raw->version == kFormatVersion) {
    num_sections = kNumSections;
    table_at = 16;
    header_bytes = kHeaderBytes;
  } else if (raw->version == kFormatVersionV4) {
    num_sections = kNumSectionsV4;
    table_at = 24;
    header_bytes = kHeaderBytesV4;
  } else {
    return info;  // v2: no section table
  }
  if (got < header_bytes) {
    return Status::Corruption("truncated header in " + path);
  }
  info.sections.resize(num_sections);
  for (size_t s = 0; s < num_sections; ++s) {
    info.sections[s].offset = GetU64(header + table_at + s * 16);
    info.sections[s].length = GetU64(header + table_at + s * 16 + 8);
  }
  return info;
}

}  // namespace hopi::storage
