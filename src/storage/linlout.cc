#include "storage/linlout.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/format.h"
#include "twohop/join_kernel.h"

namespace hopi::storage {

namespace {

// On-disk layout: storage/format.h (constants + codec) and
// docs/FILE_FORMAT.md (byte-level spec). This file only decides policy:
// write the current version, read current + v2.

bool ByIdCenter(const TableRow& a, const TableRow& b) {
  return a.id != b.id ? a.id < b.id : a.center < b.center;
}
bool ByCenterId(const TableRow& a, const TableRow& b) {
  return a.center != b.center ? a.center < b.center : a.id < b.id;
}

/// Equal-range over a forward run for one id.
std::pair<size_t, size_t> ForwardRange(const std::vector<TableRow>& run,
                                       NodeId id) {
  auto lo = std::lower_bound(run.begin(), run.end(), id,
                             [](const TableRow& r, NodeId x) {
                               return r.id < x;
                             });
  auto hi = std::upper_bound(run.begin(), run.end(), id,
                             [](NodeId x, const TableRow& r) {
                               return x < r.id;
                             });
  return {static_cast<size_t>(lo - run.begin()),
          static_cast<size_t>(hi - run.begin())};
}

/// Equal-range over a backward run for one center.
std::pair<size_t, size_t> BackwardRange(const std::vector<TableRow>& run,
                                        NodeId center) {
  auto lo = std::lower_bound(run.begin(), run.end(), center,
                             [](const TableRow& r, NodeId x) {
                               return r.center < x;
                             });
  auto hi = std::upper_bound(run.begin(), run.end(), center,
                             [](NodeId x, const TableRow& r) {
                               return x < r.center;
                             });
  return {static_cast<size_t>(lo - run.begin()),
          static_cast<size_t>(hi - run.begin())};
}

}  // namespace

LinLoutStore LinLoutStore::FromCover(const twohop::TwoHopCover& cover,
                                     bool with_distance) {
  LinLoutStore store;
  store.with_distance_ = with_distance;
  for (NodeId v = 0; v < cover.NumNodes(); ++v) {
    for (const twohop::LabelEntry& e : cover.In(v)) {
      store.lin_fwd_.push_back({v, e.center, with_distance ? e.dist : 0});
    }
    for (const twohop::LabelEntry& e : cover.Out(v)) {
      store.lout_fwd_.push_back({v, e.center, with_distance ? e.dist : 0});
    }
  }
  std::sort(store.lin_fwd_.begin(), store.lin_fwd_.end(), ByIdCenter);
  std::sort(store.lout_fwd_.begin(), store.lout_fwd_.end(), ByIdCenter);
  store.BuildBackwardRuns();
  return store;
}

void LinLoutStore::BuildBackwardRuns() {
  lin_bwd_ = lin_fwd_;
  lout_bwd_ = lout_fwd_;
  std::sort(lin_bwd_.begin(), lin_bwd_.end(), ByCenterId);
  std::sort(lout_bwd_.begin(), lout_bwd_.end(), ByCenterId);
}

twohop::TwoHopCover LinLoutStore::ToCover(size_t num_nodes) const {
  twohop::TwoHopCover cover(num_nodes);
  for (const TableRow& r : lin_fwd_) cover.AddIn(r.id, r.center, r.dist);
  for (const TableRow& r : lout_fwd_) cover.AddOut(r.id, r.center, r.dist);
  return cover;
}

bool LinLoutStore::TestConnection(NodeId id1, NodeId id2) const {
  if (id1 == id2) return true;
  // The main SQL — merge-join LOUT(id1) with LIN(id2) on the center —
  // plus the "simple additional queries" for the omitted self entries,
  // both via the shared 2-hop join over the table ranges.
  auto [ol, oh] = ForwardRange(lout_fwd_, id1);
  auto [il, ih] = ForwardRange(lin_fwd_, id2);
  return twohop::JoinViews(
             id1, id2,
             twohop::JoinView::FromEntries(lout_fwd_.data() + ol, oh - ol),
             twohop::JoinView::FromEntries(lin_fwd_.data() + il, ih - il),
             /*want_distance=*/false)
      .connected;
}

std::optional<uint32_t> LinLoutStore::MinDistance(NodeId id1,
                                                  NodeId id2) const {
  if (id1 == id2) return 0;
  auto [ol, oh] = ForwardRange(lout_fwd_, id1);
  auto [il, ih] = ForwardRange(lin_fwd_, id2);
  return twohop::JoinViews(
             id1, id2,
             twohop::JoinView::FromEntries(lout_fwd_.data() + ol, oh - ol),
             twohop::JoinView::FromEntries(lin_fwd_.data() + il, ih - il),
             /*want_distance=*/true)
      .distance;
}

std::vector<NodeId> LinLoutStore::Descendants(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);  // the center itself
    auto [lo, hi] = BackwardRange(lin_bwd_, center);
    for (size_t k = lo; k < hi; ++k) {
      if (lin_bwd_[k].id != id) result.push_back(lin_bwd_[k].id);
    }
  };
  auto [ol, oh] = ForwardRange(lout_fwd_, id);
  for (size_t k = ol; k < oh; ++k) probe_center(lout_fwd_[k].center);
  // Implicit self center: nodes whose LIN mentions `id`.
  auto [lo, hi] = BackwardRange(lin_bwd_, id);
  for (size_t k = lo; k < hi; ++k) result.push_back(lin_bwd_[k].id);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<NodeId> LinLoutStore::Ancestors(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);
    auto [lo, hi] = BackwardRange(lout_bwd_, center);
    for (size_t k = lo; k < hi; ++k) {
      if (lout_bwd_[k].id != id) result.push_back(lout_bwd_[k].id);
    }
  };
  auto [il, ih] = ForwardRange(lin_fwd_, id);
  for (size_t k = il; k < ih; ++k) probe_center(lin_fwd_[k].center);
  auto [lo, hi] = BackwardRange(lout_bwd_, id);
  for (size_t k = lo; k < hi; ++k) result.push_back(lout_bwd_[k].id);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<TableRow> LinLoutStore::ScanLin(NodeId id) const {
  auto [lo, hi] = ForwardRange(lin_fwd_, id);
  return {lin_fwd_.begin() + lo, lin_fwd_.begin() + hi};
}

std::vector<TableRow> LinLoutStore::ScanLout(NodeId id) const {
  auto [lo, hi] = ForwardRange(lout_fwd_, id);
  return {lout_fwd_.begin() + lo, lout_fwd_.begin() + hi};
}

namespace {
void RowsToLabel(const std::vector<TableRow>& run, size_t lo, size_t hi,
                 std::vector<twohop::LabelEntry>* out) {
  out->clear();
  out->reserve(hi - lo);
  for (size_t k = lo; k < hi; ++k) {
    out->push_back({run[k].center, run[k].dist});
  }
}
}  // namespace

void LinLoutStore::LinLabel(NodeId id,
                            std::vector<twohop::LabelEntry>* out) const {
  auto [lo, hi] = ForwardRange(lin_fwd_, id);
  RowsToLabel(lin_fwd_, lo, hi, out);
}

void LinLoutStore::LoutLabel(NodeId id,
                             std::vector<twohop::LabelEntry>* out) const {
  auto [lo, hi] = ForwardRange(lout_fwd_, id);
  RowsToLabel(lout_fwd_, lo, hi, out);
}

uint64_t LinLoutStore::StorageIntegers() const {
  uint64_t per_row = 2 + (with_distance_ ? 1 : 0);
  // Forward table + backward index.
  return NumEntries() * per_row * 2;
}

Status LinLoutStore::WriteToFile(const std::string& path) const {
  return AtomicWriteFile(
      path, BuildFileImage(lin_fwd_, lout_fwd_, lin_bwd_, lout_bwd_,
                           with_distance_));
}

Status LinLoutStore::WriteToFile(const std::string& path,
                                 const StoreWriteOptions& options) const {
  if (options.format_version == kFormatVersion) {
    return WriteToFile(path);
  }
  if (options.format_version != kFormatVersionV4) {
    return Status::InvalidArgument(
        "cannot write LIN/LOUT format version " +
        std::to_string(options.format_version) + "; this build writes " +
        std::to_string(kFormatVersion) + " and " +
        std::to_string(kFormatVersionV4));
  }
  return AtomicWriteFile(
      path, BuildFileImageV4(lin_fwd_, lout_fwd_, lin_bwd_, lout_bwd_,
                             with_distance_, options.compress));
}

namespace {

/// Decodes the payload of the legacy v2 layout: 2 x u64 row counts +
/// bare (id, center, dist) row triplets, no checksum. Kept read-only
/// as the migration path for files written before the v3 section-table
/// format. Returns the two forward runs via out-params.
Status ReadV2Runs(std::span<const std::byte> image, const std::string& path,
                  std::vector<TableRow>* lin_fwd,
                  std::vector<TableRow>* lout_fwd) {
  constexpr size_t kV2HeaderBytes = 12 + 2 * sizeof(uint64_t);
  if (image.size() < kV2HeaderBytes) {
    return Status::Corruption("truncated header in " + path);
  }
  // Validate the (untrusted) row counts against the actual file size
  // before reserving memory for them: a corrupt counts field must fail
  // with a Status, not a bad_alloc.
  uint64_t counts[2];
  std::memcpy(counts, image.data() + 12, sizeof(counts));
  uint64_t remaining = image.size() - kV2HeaderBytes;
  constexpr uint64_t kRowBytes = 3 * sizeof(uint32_t);
  if (counts[0] > remaining / kRowBytes ||
      counts[1] > remaining / kRowBytes ||
      (counts[0] + counts[1]) * kRowBytes != remaining) {
    return Status::Corruption("row counts inconsistent with file size in " +
                              path);
  }
  const std::byte* p = image.data() + kV2HeaderBytes;
  auto read_run = [&p](std::vector<TableRow>* run, uint64_t count) {
    run->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t buf[3];
      std::memcpy(buf, p, sizeof(buf));
      p += sizeof(buf);
      run->push_back({buf[0], buf[1], buf[2]});
    }
  };
  read_run(lin_fwd, counts[0]);
  read_run(lout_fwd, counts[1]);
  // Strictly sorted, not just sorted: duplicate (id, center) rows are
  // invalid (the writer never emits them), and accepting them here
  // would let a migration produce a v3 file whose strict directory
  // validation then rejects it — bad input must fail at read time.
  auto out_of_order = [](const TableRow& a, const TableRow& b) {
    return !ByIdCenter(a, b);
  };
  if (std::adjacent_find(lin_fwd->begin(), lin_fwd->end(), out_of_order) !=
          lin_fwd->end() ||
      std::adjacent_find(lout_fwd->begin(), lout_fwd->end(), out_of_order) !=
          lout_fwd->end()) {
    return Status::Corruption("forward runs not strictly sorted in " + path);
  }
  return Status::OK();
}

}  // namespace

Result<LinLoutStore> LinLoutStore::ReadFromFile(const std::string& path) {
  HOPI_ASSIGN_OR_RETURN(std::vector<std::byte> image, ReadFileImage(path));
  HOPI_ASSIGN_OR_RETURN(RawHeader header, ReadRawHeader(image, path));
  if (header.version == kLegacyFormatVersion) {
    if ((header.flags & ~kKnownFlags) != 0) {
      return Status::Corruption("unknown header flags in " + path);
    }
    LinLoutStore store;
    store.with_distance_ = (header.flags & kFlagDistance) != 0;
    HOPI_RETURN_NOT_OK(
        ReadV2Runs(image, path, &store.lin_fwd_, &store.lout_fwd_));
    store.BuildBackwardRuns();
    return store;
  }
  if (header.version == kFormatVersionV4) {
    // Verified parse, then decode every forward block into the runs.
    // The backward runs are rebuilt rather than decoded: ParseV4
    // already proved the stored backward sections consistent, and the
    // rebuild gives bit-identical results by construction.
    HOPI_ASSIGN_OR_RETURN(FileViewV4 view, ParseV4(image, path));
    LinLoutStore store;
    store.with_distance_ = view.with_distance;
    auto decode_side = [&](const LabelSectionView& side, bool with_distance,
                           std::vector<TableRow>* run) -> Status {
      run->reserve(side.TotalEntries());
      for (const V4BlockEntry& block : side.blocks) {
        HOPI_ASSIGN_OR_RETURN(
            DecodedBlock decoded,
            DecodeLabelBlock(side.blob, side.dir, block, with_distance,
                             path));
        for (size_t r = 0; r < decoded.NumRows(); ++r) {
          for (const twohop::LabelEntry& e : decoded.Row(r)) {
            run->push_back({decoded.row_keys[r], e.center, e.dist});
          }
        }
      }
      return Status::OK();
    };
    HOPI_RETURN_NOT_OK(
        decode_side(view.lin, view.with_distance, &store.lin_fwd_));
    HOPI_RETURN_NOT_OK(
        decode_side(view.lout, view.with_distance, &store.lout_fwd_));
    store.BuildBackwardRuns();
    return store;
  }
  if (header.version != kFormatVersion) {
    return Status::Unsupported(
        "LIN/LOUT file " + path + " has format version " +
        std::to_string(header.version) + "; this build reads versions " +
        std::to_string(kLegacyFormatVersion) + "-" +
        std::to_string(kFormatVersionV4) +
        " — rebuild the store from the cover");
  }
  HOPI_ASSIGN_OR_RETURN(FileView view, ParseV3(image, path));
  LinLoutStore store;
  store.with_distance_ = view.with_distance;
  store.lin_fwd_.reserve(view.lin_rows.size());
  for (const DirEntry& d : view.lin_dir) {
    for (uint64_t r = d.begin; r < d.begin + d.count; ++r) {
      store.lin_fwd_.push_back(
          {d.key, view.lin_rows[r].center, view.lin_rows[r].dist});
    }
  }
  store.lout_fwd_.reserve(view.lout_rows.size());
  for (const DirEntry& d : view.lout_dir) {
    for (uint64_t r = d.begin; r < d.begin + d.count; ++r) {
      store.lout_fwd_.push_back(
          {d.key, view.lout_rows[r].center, view.lout_rows[r].dist});
    }
  }
  store.BuildBackwardRuns();
  return store;
}

}  // namespace hopi::storage
