#include "storage/linlout.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace hopi::storage {

namespace {

// On-disk layout: a versioned header followed by the two forward runs.
//   magic   "HOPI"                  (4 bytes)
//   version uint32                  (kFormatVersion)
//   flags   uint32                  (kFlagDistance when the DIST column
//                                    is meaningful; other bits reserved)
//   counts  2 x uint64              (lin rows, lout rows)
//   rows    3 x uint32 per row      (id, center, dist)
// Format v1 packed the version into an 8-byte magic ("HOPILL01"); its
// files now fail with a clear version error instead of being misread.
constexpr char kMagic[4] = {'H', 'O', 'P', 'I'};
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kFlagDistance = 1u << 0;
constexpr uint32_t kKnownFlags = kFlagDistance;

bool ByIdCenter(const TableRow& a, const TableRow& b) {
  return a.id != b.id ? a.id < b.id : a.center < b.center;
}
bool ByCenterId(const TableRow& a, const TableRow& b) {
  return a.center != b.center ? a.center < b.center : a.id < b.id;
}

/// Equal-range over a forward run for one id.
std::pair<size_t, size_t> ForwardRange(const std::vector<TableRow>& run,
                                       NodeId id) {
  auto lo = std::lower_bound(run.begin(), run.end(), id,
                             [](const TableRow& r, NodeId x) {
                               return r.id < x;
                             });
  auto hi = std::upper_bound(run.begin(), run.end(), id,
                             [](NodeId x, const TableRow& r) {
                               return x < r.id;
                             });
  return {static_cast<size_t>(lo - run.begin()),
          static_cast<size_t>(hi - run.begin())};
}

/// Equal-range over a backward run for one center.
std::pair<size_t, size_t> BackwardRange(const std::vector<TableRow>& run,
                                        NodeId center) {
  auto lo = std::lower_bound(run.begin(), run.end(), center,
                             [](const TableRow& r, NodeId x) {
                               return r.center < x;
                             });
  auto hi = std::upper_bound(run.begin(), run.end(), center,
                             [](NodeId x, const TableRow& r) {
                               return x < r.center;
                             });
  return {static_cast<size_t>(lo - run.begin()),
          static_cast<size_t>(hi - run.begin())};
}

}  // namespace

LinLoutStore LinLoutStore::FromCover(const twohop::TwoHopCover& cover,
                                     bool with_distance) {
  LinLoutStore store;
  store.with_distance_ = with_distance;
  for (NodeId v = 0; v < cover.NumNodes(); ++v) {
    for (const twohop::LabelEntry& e : cover.In(v)) {
      store.lin_fwd_.push_back({v, e.center, with_distance ? e.dist : 0});
    }
    for (const twohop::LabelEntry& e : cover.Out(v)) {
      store.lout_fwd_.push_back({v, e.center, with_distance ? e.dist : 0});
    }
  }
  std::sort(store.lin_fwd_.begin(), store.lin_fwd_.end(), ByIdCenter);
  std::sort(store.lout_fwd_.begin(), store.lout_fwd_.end(), ByIdCenter);
  store.BuildBackwardRuns();
  return store;
}

void LinLoutStore::BuildBackwardRuns() {
  lin_bwd_ = lin_fwd_;
  lout_bwd_ = lout_fwd_;
  std::sort(lin_bwd_.begin(), lin_bwd_.end(), ByCenterId);
  std::sort(lout_bwd_.begin(), lout_bwd_.end(), ByCenterId);
}

twohop::TwoHopCover LinLoutStore::ToCover(size_t num_nodes) const {
  twohop::TwoHopCover cover(num_nodes);
  for (const TableRow& r : lin_fwd_) cover.AddIn(r.id, r.center, r.dist);
  for (const TableRow& r : lout_fwd_) cover.AddOut(r.id, r.center, r.dist);
  return cover;
}

bool LinLoutStore::TestConnection(NodeId id1, NodeId id2) const {
  if (id1 == id2) return true;
  // The main SQL — merge-join LOUT(id1) with LIN(id2) on the center —
  // plus the "simple additional queries" for the omitted self entries,
  // both via the shared 2-hop join over the table ranges.
  auto [ol, oh] = ForwardRange(lout_fwd_, id1);
  auto [il, ih] = ForwardRange(lin_fwd_, id2);
  return twohop::JoinLabelRanges(id1, id2, lout_fwd_.data() + ol, oh - ol,
                                 lin_fwd_.data() + il, ih - il,
                                 /*want_distance=*/false)
      .connected;
}

std::optional<uint32_t> LinLoutStore::MinDistance(NodeId id1,
                                                  NodeId id2) const {
  if (id1 == id2) return 0;
  auto [ol, oh] = ForwardRange(lout_fwd_, id1);
  auto [il, ih] = ForwardRange(lin_fwd_, id2);
  return twohop::JoinLabelRanges(id1, id2, lout_fwd_.data() + ol, oh - ol,
                                 lin_fwd_.data() + il, ih - il,
                                 /*want_distance=*/true)
      .distance;
}

std::vector<NodeId> LinLoutStore::Descendants(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);  // the center itself
    auto [lo, hi] = BackwardRange(lin_bwd_, center);
    for (size_t k = lo; k < hi; ++k) {
      if (lin_bwd_[k].id != id) result.push_back(lin_bwd_[k].id);
    }
  };
  auto [ol, oh] = ForwardRange(lout_fwd_, id);
  for (size_t k = ol; k < oh; ++k) probe_center(lout_fwd_[k].center);
  // Implicit self center: nodes whose LIN mentions `id`.
  auto [lo, hi] = BackwardRange(lin_bwd_, id);
  for (size_t k = lo; k < hi; ++k) result.push_back(lin_bwd_[k].id);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<NodeId> LinLoutStore::Ancestors(NodeId id) const {
  std::vector<NodeId> result;
  auto probe_center = [this, &result, id](NodeId center) {
    if (center != id) result.push_back(center);
    auto [lo, hi] = BackwardRange(lout_bwd_, center);
    for (size_t k = lo; k < hi; ++k) {
      if (lout_bwd_[k].id != id) result.push_back(lout_bwd_[k].id);
    }
  };
  auto [il, ih] = ForwardRange(lin_fwd_, id);
  for (size_t k = il; k < ih; ++k) probe_center(lin_fwd_[k].center);
  auto [lo, hi] = BackwardRange(lout_bwd_, id);
  for (size_t k = lo; k < hi; ++k) result.push_back(lout_bwd_[k].id);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<TableRow> LinLoutStore::ScanLin(NodeId id) const {
  auto [lo, hi] = ForwardRange(lin_fwd_, id);
  return {lin_fwd_.begin() + lo, lin_fwd_.begin() + hi};
}

std::vector<TableRow> LinLoutStore::ScanLout(NodeId id) const {
  auto [lo, hi] = ForwardRange(lout_fwd_, id);
  return {lout_fwd_.begin() + lo, lout_fwd_.begin() + hi};
}

namespace {
void RowsToLabel(const std::vector<TableRow>& run, size_t lo, size_t hi,
                 std::vector<twohop::LabelEntry>* out) {
  out->clear();
  out->reserve(hi - lo);
  for (size_t k = lo; k < hi; ++k) {
    out->push_back({run[k].center, run[k].dist});
  }
}
}  // namespace

void LinLoutStore::LinLabel(NodeId id,
                            std::vector<twohop::LabelEntry>* out) const {
  auto [lo, hi] = ForwardRange(lin_fwd_, id);
  RowsToLabel(lin_fwd_, lo, hi, out);
}

void LinLoutStore::LoutLabel(NodeId id,
                             std::vector<twohop::LabelEntry>* out) const {
  auto [lo, hi] = ForwardRange(lout_fwd_, id);
  RowsToLabel(lout_fwd_, lo, hi, out);
}

uint64_t LinLoutStore::StorageIntegers() const {
  uint64_t per_row = 2 + (with_distance_ ? 1 : 0);
  // Forward table + backward index.
  return NumEntries() * per_row * 2;
}

Status LinLoutStore::WriteToFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  auto write_u32 = [f](uint32_t v) {
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
  };
  auto write_u64 = [f](uint64_t v) {
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
  };
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && write_u32(kFormatVersion);
  ok = ok && write_u32(with_distance_ ? kFlagDistance : 0);
  ok = ok && write_u64(lin_fwd_.size()) && write_u64(lout_fwd_.size());
  auto write_run = [f, &ok](const std::vector<TableRow>& run) {
    for (const TableRow& r : run) {
      uint32_t buf[3] = {r.id, r.center, r.dist};
      if (std::fwrite(buf, sizeof(buf), 1, f) != 1) {
        ok = false;
        return;
      }
    }
  };
  if (ok) write_run(lin_fwd_);
  if (ok) write_run(lout_fwd_);
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<LinLoutStore> LinLoutStore::ReadFromFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  LinLoutStore store;
  char magic[4];
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t counts[2];
  if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return Status::Corruption("not a HOPI LIN/LOUT file (bad magic): " +
                              path);
  }
  if (std::fread(&version, sizeof(version), 1, f) != 1 ||
      std::fread(&flags, sizeof(flags), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersion) {
    std::fclose(f);
    return Status::Unsupported(
        "LIN/LOUT file " + path + " has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kFormatVersion) +
        " — rebuild the store from the cover");
  }
  if ((flags & ~kKnownFlags) != 0) {
    std::fclose(f);
    return Status::Corruption("unknown header flags in " + path);
  }
  if (std::fread(counts, sizeof(counts), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("truncated header in " + path);
  }
  // Validate the (untrusted) row counts against the actual file size
  // before reserving memory for them: a corrupt counts field must fail
  // with a Status, not a bad_alloc. (long positions are 64-bit on the
  // POSIX platforms this project targets.)
  long data_start = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  long file_end = std::ftell(f);
  if (data_start < 0 || file_end < 0 ||
      std::fseek(f, data_start, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of " + path);
  }
  uint64_t remaining =
      file_end >= data_start ? static_cast<uint64_t>(file_end - data_start)
                             : 0;
  constexpr uint64_t kRowBytes = 3 * sizeof(uint32_t);
  if (counts[0] > remaining / kRowBytes ||
      counts[1] > remaining / kRowBytes ||
      (counts[0] + counts[1]) * kRowBytes != remaining) {
    std::fclose(f);
    return Status::Corruption("row counts inconsistent with file size in " +
                              path);
  }
  store.with_distance_ = (flags & kFlagDistance) != 0;
  auto read_run = [f](std::vector<TableRow>* run, uint64_t count) {
    run->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t buf[3];
      if (std::fread(buf, sizeof(buf), 1, f) != 1) return false;
      run->push_back({buf[0], buf[1], buf[2]});
    }
    return true;
  };
  bool ok = read_run(&store.lin_fwd_, counts[0]) &&
            read_run(&store.lout_fwd_, counts[1]);
  std::fclose(f);
  if (!ok) return Status::Corruption("truncated rows in " + path);
  if (!std::is_sorted(store.lin_fwd_.begin(), store.lin_fwd_.end(),
                      ByIdCenter) ||
      !std::is_sorted(store.lout_fwd_.begin(), store.lout_fwd_.end(),
                      ByIdCenter)) {
    return Status::Corruption("forward runs not sorted in " + path);
  }
  store.BuildBackwardRuns();
  return store;
}

}  // namespace hopi::storage
