#include "engine/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <map>
#include <unordered_set>
#include <utility>

#include "engine/backend.h"
#include "query/tag_index.h"

namespace hopi::engine {

namespace {

/// Dedup key of one (a, b) probe inside a sub-batch.
uint64_t ProbeKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

size_t FanoutBucket(size_t fanout) {
  size_t bucket = 0;
  while (fanout > 1 && bucket < 15) {
    fanout >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

// ---------------------------------------------------------------------------
// PoolShardClient
// ---------------------------------------------------------------------------

PoolShardClient::PoolShardClient(std::string name,
                                 std::shared_ptr<const BackendSnapshot> snapshot,
                                 EnginePoolOptions options)
    : name_(std::move(name)),
      with_distance_(snapshot->MakeBackend()->with_distance()),
      pool_(std::move(snapshot), std::move(options)) {}

uint64_t PoolShardClient::snapshot_version() const {
  return pool_.snapshot()->version();
}

Status PoolShardClient::SubmitBatch(
    BatchRequest request,
    std::function<void(Result<ShardBatchResult>)> on_done) {
  return pool_.SubmitBatch(
      std::move(request),
      [cb = std::move(on_done)](Result<PoolBatchResponse> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        cb(ShardBatchResult{std::move(r->batch), r->snapshot_version});
      });
}

std::vector<NodeId> PoolShardClient::Descendants(NodeId u) const {
  // Pin the snapshot for the duration of the adapter call; a concurrent
  // Swap retires the old snapshot only after this reference drops.
  std::shared_ptr<const BackendSnapshot> snapshot = pool_.snapshot();
  return snapshot->MakeBackend()->Descendants(u);
}

std::vector<NodeId> PoolShardClient::Ancestors(NodeId u) const {
  std::shared_ptr<const BackendSnapshot> snapshot = pool_.snapshot();
  return snapshot->MakeBackend()->Ancestors(u);
}

Status PoolShardClient::Swap(std::shared_ptr<const BackendSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("PoolShardClient::Swap: null snapshot");
  }
  pool_.Swap(std::move(snapshot));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Merge state
// ---------------------------------------------------------------------------

/// One per-shard sub-batch of a sharded batch: the deduplicated probe
/// list plus the (a, b) -> position map the merge uses to look leg
/// answers back up.
struct ShardedEngine::SubBatch {
  size_t shard = 0;
  BatchRequest request;
  std::unordered_map<uint64_t, size_t> index_of;
  /// Engaged once the shard answered (or its submit was rejected).
  std::optional<Result<ShardBatchResult>> result;
};

/// One in-flight sharded batch: the routing plan plus the completion
/// rendezvous. `finalized` flips exactly once, under `mu`, won by the
/// last sub-batch completion, the watchdog's deadline, or Shutdown —
/// whoever flips it runs Finalize.
struct ShardedEngine::MergeState {
  /// Per-request-pair routing decision.
  struct Plan {
    enum class Kind { kResolved, kDirect, kCross };
    Kind kind = Kind::kResolved;
    // kResolved: the answer was fixed at routing time (reflexive pair,
    // dead endpoint, empty route table).
    bool reachable = false;
    std::optional<uint32_t> dist;
    // kDirect: position `index` of sub-batch `sub`.
    // kCross: `sub` = source-leg sub-batch, `target_sub` = target-leg
    // sub-batch, `routes` = the skeleton routes to compose over
    // (borrowed from the ShardPlan, which outlives the engine).
    size_t sub = 0;
    size_t index = 0;
    size_t target_sub = 0;
    const std::vector<ShardRoute>* routes = nullptr;
  };

  std::mutex mu;
  std::atomic<bool> finalized{false};  // written under mu; read lock-free
  size_t pending = 0;                  // sub-batches not yet completed
  BatchRequest request;
  std::vector<Plan> pairs;
  std::vector<SubBatch> subs;
  std::function<void(ShardedBatchResponse)> on_done;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
};

// ---------------------------------------------------------------------------
// ShardedBackend: the path-query adapter
// ---------------------------------------------------------------------------

/// ReachabilityBackend over the whole sharded engine: scalar probes run
/// one-pair sharded batches, Descendants/Ancestors expand shard-locally
/// and hop the route tables once (routes are PSG-closed — see the
/// derivation in shard_router.h — so a single hop reaches every shard).
/// Degradation note: the path evaluator has no partial-result channel,
/// so probes that come back unresolved (deadline, failed shard) are
/// reported unreachable — path answers during a shard outage may
/// under-report matches, they never invent them.
class ShardedBackend : public ReachabilityBackend {
 public:
  explicit ShardedBackend(ShardedEngine* engine) : engine_(engine) {}

  std::string_view Name() const override { return "sharded"; }
  bool with_distance() const override { return engine_->with_distance(); }

  bool IsReachable(NodeId u, NodeId v) const override {
    return Probe(u, v, /*want_distance=*/false).first;
  }

  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    if (!engine_->with_distance()) {
      // Plain-backend contract: 0 for every connected pair.
      return IsReachable(u, v) ? std::optional<uint32_t>(0) : std::nullopt;
    }
    return Probe(u, v, /*want_distance=*/true).second;
  }

  std::vector<bool> TestConnections(
      std::span<const NodePair> pairs) const override {
    BatchRequest request;
    request.pairs.assign(pairs.begin(), pairs.end());
    Result<ShardedBatchResponse> r = engine_->Batch(std::move(request));
    if (!r.ok()) return std::vector<bool>(pairs.size(), false);
    std::vector<bool> out(pairs.size(), false);
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (r->resolved[i]) out[i] = r->batch.reachable[i];
    }
    return out;
  }

  std::vector<NodeId> Descendants(NodeId u) const override {
    return Expand(u, /*down=*/true);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return Expand(u, /*down=*/false);
  }

 private:
  std::pair<bool, std::optional<uint32_t>> Probe(NodeId u, NodeId v,
                                                 bool want_distance) const {
    BatchRequest request;
    request.pairs.emplace_back(u, v);
    request.want_distances = want_distance;
    Result<ShardedBatchResponse> r = engine_->Batch(std::move(request));
    if (!r.ok() || !r->resolved[0]) return {false, std::nullopt};
    bool reachable = r->batch.reachable[0];
    std::optional<uint32_t> dist;
    if (want_distance && reachable) dist = r->batch.distances[0];
    return {reachable, dist};
  }

  std::vector<NodeId> Expand(NodeId u, bool down) const {
    const ShardRouter& router = engine_->router();
    uint32_t su = router.ShardOf(u);
    std::vector<NodeId> out;
    if (su == kUnassignedShard) return out;
    ShardClient& home = engine_->client(su);
    out = down ? home.Descendants(u) : home.Ancestors(u);
    // Hop the skeleton once: every cross-link endpoint reachable from u
    // (descendants direction: route sources in u's shard; ancestors:
    // route targets) carries us into its peer shard, where the local
    // expansion finishes the job — the peer covers already contain the
    // leave-and-return closure.
    std::vector<NodeId> frontier = out;
    frontier.push_back(u);
    std::unordered_set<NodeId> entered;
    for (NodeId e : frontier) {
      const auto& hops = down ? router.RoutesFrom(e) : router.RoutesInto(e);
      for (const auto& [peer, dist] : hops) {
        (void)dist;
        if (!entered.insert(peer).second) continue;
        out.push_back(peer);
        ShardClient& shard = engine_->client(router.ShardOf(peer));
        std::vector<NodeId> local =
            down ? shard.Descendants(peer) : shard.Ancestors(peer);
        out.insert(out.end(), local.begin(), local.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    // Strict axis: a cycle through the skeleton may re-reach u itself.
    out.erase(std::remove(out.begin(), out.end(), u), out.end());
    return out;
  }

  ShardedEngine* engine_;
};

// ---------------------------------------------------------------------------
// ShardedEngine
// ---------------------------------------------------------------------------

namespace {

std::vector<std::unique_ptr<ShardClient>> MakePoolClients(
    const collection::Collection& collection, const ShardPlan& plan,
    const ShardedEngineOptions& options) {
  // One tag index shared by every shard snapshot (they all serve the
  // same collection object).
  auto tags = std::make_shared<const query::TagIndex>(collection);
  EnginePoolOptions pool_options;
  pool_options.num_threads = options.threads_per_shard;
  pool_options.dispatch = options.dispatch;
  pool_options.label_cache_bytes = options.label_cache_bytes;
  pool_options.queue_capacity = options.queue_capacity;
  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.reserve(plan.num_shards);
  for (size_t s = 0; s < plan.num_shards; ++s) {
    clients.push_back(std::make_unique<PoolShardClient>(
        "shard-" + std::to_string(s),
        BackendSnapshot::OfIndex(plan.indexes[s], tags), pool_options));
  }
  return clients;
}

}  // namespace

ShardedEngine::ShardedEngine(const collection::Collection* collection,
                             const ShardPlan* plan,
                             ShardedEngineOptions options)
    : ShardedEngine(collection, plan,
                    MakePoolClients(*collection, *plan, options), options) {}

ShardedEngine::ShardedEngine(const collection::Collection* collection,
                             const ShardPlan* plan,
                             std::vector<std::unique_ptr<ShardClient>> clients,
                             ShardedEngineOptions options)
    : collection_(collection),
      plan_(plan),
      router_(plan),
      options_(options),
      clients_(std::move(clients)),
      per_shard_probes_(plan->num_shards) {
  assert(clients_.size() == plan_->num_shards &&
         "one ShardClient per plan shard");
  with_distance_ = true;
  for (const auto& client : clients_) {
    with_distance_ = with_distance_ && client->with_distance();
  }
  QueryEngineOptions engine_options;
  engine_options.label_cache_bytes = options_.label_cache_bytes;
  path_engine_ = std::make_unique<QueryEngine>(
      *collection_, std::make_unique<ShardedBackend>(this), engine_options);
  watchdog_ = std::thread(&ShardedEngine::WatchdogLoop, this);
  path_worker_ = std::thread(&ShardedEngine::PathWorkerLoop, this);
}

ShardedEngine::~ShardedEngine() { Shutdown(); }

Status ShardedEngine::PlanBatch(const BatchRequest& request,
                                MergeState* state) {
  using Plan = MergeState::Plan;
  const size_t n = clients_.size();
  // Tag of the one direct (unhinted) sub-batch per shard; cross
  // sub-batches are tagged — and lane-hinted — by their ordered shard
  // pair so one pair's leg labels concentrate in one worker's cache.
  constexpr uint64_t kDirectTag = UINT64_MAX;

  std::map<std::pair<size_t, uint64_t>, size_t> sub_of;
  auto sub_for = [&](size_t shard, uint64_t tag) {
    auto [it, inserted] = sub_of.try_emplace({shard, tag}, state->subs.size());
    if (inserted) {
      SubBatch sub;
      sub.shard = shard;
      sub.request.want_distances = request.want_distances;
      if (tag != kDirectTag) sub.request.lane_hint = tag;
      state->subs.push_back(std::move(sub));
    }
    return it->second;
  };
  std::vector<uint64_t> shard_probes(n, 0);
  auto add_probe = [&](size_t sub_index, NodeId a, NodeId b) {
    SubBatch& sub = state->subs[sub_index];
    auto [it, inserted] =
        sub.index_of.try_emplace(ProbeKey(a, b), sub.request.pairs.size());
    if (inserted) {
      sub.request.pairs.emplace_back(a, b);
      ++shard_probes[sub.shard];
    }
    return it->second;
  };

  uint64_t direct = 0, cross = 0, routeless = 0, legs = 0;
  std::array<uint64_t, 16> fanout{};
  state->pairs.reserve(request.pairs.size());
  for (const auto& [u, v] : request.pairs) {
    Plan plan;
    if (u == v) {
      // Reflexive — true on every backend, no shard consulted.
      plan.kind = Plan::Kind::kResolved;
      plan.reachable = true;
      plan.dist = 0;
      state->pairs.push_back(plan);
      continue;
    }
    uint32_t su = router_.ShardOf(u);
    uint32_t sv = router_.ShardOf(v);
    if (su == kUnassignedShard || sv == kUnassignedShard) {
      // Dead-document elements have no edges and empty labels.
      plan.kind = Plan::Kind::kResolved;
      state->pairs.push_back(plan);
      continue;
    }
    if (su == sv) {
      size_t sub = sub_for(su, kDirectTag);
      plan.kind = Plan::Kind::kDirect;
      plan.sub = sub;
      plan.index = add_probe(sub, u, v);
      ++direct;
      state->pairs.push_back(plan);
      continue;
    }
    ++cross;
    const std::vector<ShardRoute>& routes = router_.RoutesBetween(su, sv);
    if (routes.empty()) {
      // No skeleton route between the shards: unreachable, no probing.
      plan.kind = Plan::Kind::kResolved;
      ++routeless;
      ++fanout[0];
      state->pairs.push_back(plan);
      continue;
    }
    const ShardProbeSet& probes = router_.ProbesBetween(su, sv);
    uint64_t tag = static_cast<uint64_t>(su) * n + sv;
    size_t source_sub = sub_for(su, tag);
    size_t target_sub = sub_for(sv, tag);
    for (NodeId s : probes.sources) add_probe(source_sub, u, s);
    for (NodeId t : probes.targets) add_probe(target_sub, t, v);
    plan.kind = Plan::Kind::kCross;
    plan.sub = source_sub;
    plan.target_sub = target_sub;
    plan.routes = &routes;
    size_t pair_fanout = probes.sources.size() + probes.targets.size();
    legs += pair_fanout;
    ++fanout[FanoutBucket(pair_fanout)];
    state->pairs.push_back(plan);
  }

  if (request.want_distances) {
    for (const SubBatch& sub : state->subs) {
      if (!clients_[sub.shard]->with_distance()) {
        return Status::Unsupported(
            "distance batch routed to shard '" +
            std::string(clients_[sub.shard]->name()) +
            "' whose cover was built without distances");
      }
    }
  }

  // The plan is final — commit its stats.
  direct_pairs_.fetch_add(direct, std::memory_order_relaxed);
  cross_pairs_.fetch_add(cross, std::memory_order_relaxed);
  routeless_pairs_.fetch_add(routeless, std::memory_order_relaxed);
  leg_probes_.fetch_add(legs, std::memory_order_relaxed);
  subbatches_.fetch_add(state->subs.size(), std::memory_order_relaxed);
  for (size_t s = 0; s < n; ++s) {
    if (shard_probes[s] != 0) {
      per_shard_probes_[s].fetch_add(shard_probes[s],
                                     std::memory_order_relaxed);
    }
  }
  for (size_t b = 0; b < fanout.size(); ++b) {
    if (fanout[b] != 0) {
      fanout_histogram_[b].fetch_add(fanout[b], std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status ShardedEngine::SubmitBatch(
    BatchRequest request, std::function<void(ShardedBatchResponse)> on_done) {
  assert(on_done && "SubmitBatch requires a callback");
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "SubmitBatch on a shut-down ShardedEngine");
  }
  auto state = std::make_shared<MergeState>();
  state->request = std::move(request);
  state->on_done = std::move(on_done);
  state->start = std::chrono::steady_clock::now();
  HOPI_RETURN_NOT_OK(PlanBatch(state->request, state.get()));
  state->pending = state->subs.size();

  if (state->subs.empty()) {
    // Every pair resolved at routing time — finalize inline.
    state->finalized.store(true, std::memory_order_release);
    Finalize(state, Status::OK());
    return Status::OK();
  }

  if (options_.merge_deadline.count() > 0) {
    state->deadline = state->start + options_.merge_deadline;
    state->has_deadline = true;
  }
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watched_.push_back(state);
  }
  watch_cv_.notify_one();

  for (size_t k = 0; k < state->subs.size(); ++k) {
    BatchRequest sub_request = std::move(state->subs[k].request);
    size_t shard = state->subs[k].shard;
    Status submitted = clients_[shard]->SubmitBatch(
        std::move(sub_request), [this, state, k](Result<ShardBatchResult> r) {
          OnSubBatchDone(state, k, std::move(r));
        });
    if (!submitted.ok()) {
      // The shard refused (shed / shut down): fold the rejection into
      // the merge as a failed sub-batch.
      OnSubBatchDone(state, k, std::move(submitted));
    }
  }
  return Status::OK();
}

void ShardedEngine::OnSubBatchDone(const std::shared_ptr<MergeState>& state,
                                   size_t sub, Result<ShardBatchResult> result) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->finalized.load(std::memory_order_relaxed)) {
      return;  // the watchdog or Shutdown already delivered this batch
    }
    if (!result.ok()) {
      failed_subbatches_.fetch_add(1, std::memory_order_relaxed);
    }
    state->subs[sub].result = std::move(result);
    if (--state->pending == 0) {
      state->finalized.store(true, std::memory_order_release);
      last = true;
    }
  }
  if (!last) return;

  Status status = Status::OK();
  for (const SubBatch& s : state->subs) {
    if (s.result.has_value() && !s.result->ok()) {
      status = Status::Unavailable(
          "shard '" + std::string(clients_[s.shard]->name()) +
          "' failed its sub-batch: " + s.result->status().message());
      break;
    }
  }
  Finalize(state, std::move(status));
  std::lock_guard<std::mutex> lock(watch_mu_);
  std::erase(watched_, state);
}

void ShardedEngine::Finalize(const std::shared_ptr<MergeState>& state,
                             Status status) {
  using Plan = MergeState::Plan;
  const bool want = state->request.want_distances;
  const size_t n = state->request.pairs.size();

  ShardedBatchResponse response;
  response.batch.reachable.assign(n, false);
  if (want) response.batch.distances.assign(n, std::nullopt);
  response.resolved.assign(n, false);
  response.shard_versions.assign(clients_.size(), 0);

  auto sub_ok = [&](size_t k) {
    const SubBatch& s = state->subs[k];
    return s.result.has_value() && s.result->ok();
  };
  for (size_t k = 0; k < state->subs.size(); ++k) {
    if (!sub_ok(k)) continue;
    const SubBatch& s = state->subs[k];
    const ShardBatchResult& r = s.result->value();
    response.shard_versions[s.shard] =
        std::max(response.shard_versions[s.shard], r.snapshot_version);
    const BatchStats& bs = r.batch.stats;
    response.batch.stats.probes += bs.probes;
    response.batch.stats.unique_probes += bs.unique_probes;
    response.batch.stats.cache_hits += bs.cache_hits;
    response.batch.stats.cache_misses += bs.cache_misses;
    response.batch.stats.labels_borrowed += bs.labels_borrowed;
    response.batch.stats.blocks_decoded += bs.blocks_decoded;
    response.batch.stats.backend_probes += bs.backend_probes;
  }

  for (size_t i = 0; i < n; ++i) {
    const Plan& plan = state->pairs[i];
    switch (plan.kind) {
      case Plan::Kind::kResolved: {
        response.resolved[i] = true;
        response.batch.reachable[i] = plan.reachable;
        if (want && plan.reachable) response.batch.distances[i] = plan.dist;
        break;
      }
      case Plan::Kind::kDirect: {
        if (!sub_ok(plan.sub)) break;  // stays unresolved
        const BatchResponse& b = state->subs[plan.sub].result->value().batch;
        response.resolved[i] = true;
        response.batch.reachable[i] = b.reachable[plan.index];
        if (want) response.batch.distances[i] = b.distances[plan.index];
        break;
      }
      case Plan::Kind::kCross: {
        if (!sub_ok(plan.sub) || !sub_ok(plan.target_sub)) break;
        const auto& [u, v] = state->request.pairs[i];
        const SubBatch& source_sub = state->subs[plan.sub];
        const SubBatch& target_sub = state->subs[plan.target_sub];
        const BatchResponse& sb = source_sub.result->value().batch;
        const BatchResponse& tb = target_sub.result->value().batch;
        auto leg = [&](const SubBatch& sub, const BatchResponse& b, NodeId a,
                       NodeId c) -> std::optional<uint32_t> {
          auto it = sub.index_of.find(ProbeKey(a, c));
          if (it == sub.index_of.end()) return std::nullopt;
          if (!b.reachable[it->second]) return std::nullopt;
          if (!want) return 0;
          return b.distances[it->second].value_or(0);
        };
        auto [reachable, dist] = ComposeThreeLegs(
            *plan.routes,
            [&](NodeId s) { return leg(source_sub, sb, u, s); },
            [&](NodeId t) { return leg(target_sub, tb, t, v); }, want);
        response.resolved[i] = true;
        response.batch.reachable[i] = reachable;
        if (want) response.batch.distances[i] = dist;
        break;
      }
    }
  }

  response.status = status;
  response.batch.error = std::move(status);

  uint64_t latency_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - state->start)
          .count();
  batches_.fetch_add(1, std::memory_order_relaxed);
  merges_.fetch_add(1, std::memory_order_relaxed);
  merge_latency_us_total_.fetch_add(latency_us, std::memory_order_relaxed);
  uint64_t prev_max = merge_latency_us_max_.load(std::memory_order_relaxed);
  while (latency_us > prev_max &&
         !merge_latency_us_max_.compare_exchange_weak(
             prev_max, latency_us, std::memory_order_relaxed)) {
  }
  if (!response.status.ok()) {
    partial_batches_.fetch_add(1, std::memory_order_relaxed);
  }

  state->on_done(std::move(response));
}

void ShardedEngine::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    auto earliest = std::chrono::steady_clock::time_point::max();
    for (const auto& state : watched_) {
      if (state->has_deadline && state->deadline < earliest) {
        earliest = state->deadline;
      }
    }
    if (earliest == std::chrono::steady_clock::time_point::max()) {
      watch_cv_.wait(lock);
      continue;
    }
    watch_cv_.wait_until(lock, earliest);
    if (shutdown_.load(std::memory_order_acquire)) break;

    auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<MergeState>> expired;
    for (const auto& state : watched_) {
      if (state->has_deadline && state->deadline <= now &&
          !state->finalized.load(std::memory_order_acquire)) {
        expired.push_back(state);
      }
    }
    lock.unlock();
    for (const auto& state : expired) {
      bool won = false;
      {
        std::lock_guard<std::mutex> state_lock(state->mu);
        if (!state->finalized.load(std::memory_order_relaxed)) {
          state->finalized.store(true, std::memory_order_release);
          won = true;
        }
      }
      if (won) {
        Finalize(state, Status::DeadlineExceeded(
                            "merge deadline elapsed before every shard "
                            "answered; unresolved pairs are unanswered"));
      }
    }
    lock.lock();
    std::erase_if(watched_, [](const std::shared_ptr<MergeState>& state) {
      return state->finalized.load(std::memory_order_acquire);
    });
  }
}

Result<ShardedBatchResponse> ShardedEngine::Batch(BatchRequest request) {
  auto promise = std::make_shared<std::promise<ShardedBatchResponse>>();
  std::future<ShardedBatchResponse> future = promise->get_future();
  HOPI_RETURN_NOT_OK(
      SubmitBatch(std::move(request), [promise](ShardedBatchResponse r) {
        promise->set_value(std::move(r));
      }));
  return future.get();
}

Status ShardedEngine::SubmitQuery(
    PathQueryRequest request,
    std::function<void(Result<PoolPathResponse>)> on_done) {
  assert(on_done && "SubmitQuery requires a callback");
  {
    std::lock_guard<std::mutex> lock(path_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "SubmitQuery on a shut-down ShardedEngine");
    }
    path_queue_.push_back(PathJob{std::move(request), std::move(on_done)});
  }
  path_cv_.notify_one();
  return Status::OK();
}

Result<PoolPathResponse> ShardedEngine::Query(PathQueryRequest request) {
  auto promise = std::make_shared<std::promise<Result<PoolPathResponse>>>();
  std::future<Result<PoolPathResponse>> future = promise->get_future();
  HOPI_RETURN_NOT_OK(
      SubmitQuery(std::move(request), [promise](Result<PoolPathResponse> r) {
        promise->set_value(std::move(r));
      }));
  return future.get();
}

void ShardedEngine::PathWorkerLoop() {
  while (true) {
    PathJob job;
    {
      std::unique_lock<std::mutex> lock(path_mu_);
      path_cv_.wait(lock, [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               !path_queue_.empty();
      });
      if (path_queue_.empty()) return;  // shut down and drained
      job = std::move(path_queue_.front());
      path_queue_.pop_front();
    }
    PoolPathResponse response{path_engine_->Query(job.request), 0, 0, 0};
    for (const auto& client : clients_) {
      response.snapshot_version =
          std::max(response.snapshot_version, client->snapshot_version());
    }
    job.on_done(std::move(response));
  }
}

ShardStats ShardedEngine::Stats() const {
  ShardStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.direct_pairs = direct_pairs_.load(std::memory_order_relaxed);
  stats.cross_pairs = cross_pairs_.load(std::memory_order_relaxed);
  stats.routeless_pairs = routeless_pairs_.load(std::memory_order_relaxed);
  stats.subbatches = subbatches_.load(std::memory_order_relaxed);
  stats.leg_probes = leg_probes_.load(std::memory_order_relaxed);
  stats.partial_batches = partial_batches_.load(std::memory_order_relaxed);
  stats.failed_subbatches = failed_subbatches_.load(std::memory_order_relaxed);
  stats.per_shard_probes.reserve(per_shard_probes_.size());
  for (const auto& count : per_shard_probes_) {
    stats.per_shard_probes.push_back(count.load(std::memory_order_relaxed));
  }
  for (size_t b = 0; b < fanout_histogram_.size(); ++b) {
    stats.fanout_histogram[b] =
        fanout_histogram_[b].load(std::memory_order_relaxed);
  }
  stats.merges = merges_.load(std::memory_order_relaxed);
  stats.merge_latency_us_total =
      merge_latency_us_total_.load(std::memory_order_relaxed);
  stats.merge_latency_us_max =
      merge_latency_us_max_.load(std::memory_order_relaxed);
  return stats;
}

void ShardedEngine::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    shutdown_.store(true, std::memory_order_release);
    watch_cv_.notify_all();
    path_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    if (path_worker_.joinable()) path_worker_.join();

    // Fail whatever merges are still outstanding (stalled shards,
    // dropped callbacks) so sync callers unblock. Sub-batch callbacks
    // that straggle in later see `finalized` and drop their result.
    std::vector<std::shared_ptr<MergeState>> leftovers;
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      leftovers.swap(watched_);
    }
    for (const auto& state : leftovers) {
      bool won = false;
      {
        std::lock_guard<std::mutex> state_lock(state->mu);
        if (!state->finalized.load(std::memory_order_relaxed)) {
          state->finalized.store(true, std::memory_order_release);
          won = true;
        }
      }
      if (won) {
        Finalize(state,
                 Status::Unavailable("ShardedEngine shut down mid-merge"));
      }
    }
  });
}

}  // namespace hopi::engine
