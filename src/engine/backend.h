// ReachabilityBackend: the pluggable access-path seam of the query layer.
//
// The paper's query section (Sec 5.1) treats the 2-hop cover as one
// access path among several — the in-memory labels, the LIN/LOUT
// index-organized tables, and plain traversal / materialized closure.
// This interface captures the operations every access path must answer
// so the QueryEngine facade (engine/engine.h) and the path evaluator
// (query/path_query.h) can run against any of them interchangeably.
//
// Adapters for the three concrete access paths live in
// engine/backends.h. The interface is header-only on purpose: lower
// layers (query) implement against it without linking the engine
// library, which keeps the module graph acyclic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "storage/compress.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::engine {

/// One owned LIN or LOUT label set: (center, dist) rows sorted by
/// center id. The distance is 0 for backends built without the DIST
/// column.
using Label = std::vector<twohop::LabelEntry>;

/// A borrowed, read-only view of one label set — same rows and sort
/// order as Label, but the storage belongs to whoever produced the
/// view (an in-memory cover, the engine's LRU cache, or an mmapped
/// file image). See BorrowOutLabel() for the lifetime contract.
using LabelView = std::span<const twohop::LabelEntry>;

/// A decoded block of compressed label rows (storage/compress.h),
/// shared between the engine's byte-budgeted cache and every in-flight
/// view into it. Immutable once decoded.
using LabelBlock = std::shared_ptr<const storage::DecodedBlock>;

/// A label view plus whatever keeps it alive. Three flavors:
///
///   borrow  — `block` is null, the view aliases backend-owned storage
///             (valid for the backend's lifetime, as BorrowOutLabel
///             promises);
///   block   — `block` pins the DecodedBlock the view aliases: cache
///             eviction only drops the cache's reference, so the view
///             stays valid for as long as this PinnedLabel (or a copy
///             of its block pointer) lives;
///   copy    — same as block; the engine wraps backend-materialized
///             labels in single-row blocks so the cache has one
///             currency.
///
/// THE pinning rule: hold the PinnedLabel, not just the LabelView.
/// A bare view extracted from a PinnedLabel must not outlive it.
struct PinnedLabel {
  LabelView view;
  LabelBlock block;
};

/// The kernel-ready twin of PinnedLabel: a twohop::JoinView (SoA or
/// strided columns + the label's summary word) plus whatever keeps the
/// underlying arrays alive. Same pinning rule — hold the PinnedJoin,
/// not just the view.
struct PinnedJoin {
  twohop::JoinView view;
  LabelBlock block;
};

/// A single (source, target) reachability probe.
using NodePair = std::pair<NodeId, NodeId>;

class ReachabilityBackend {
 public:
  virtual ~ReachabilityBackend() = default;

  /// Short identifier for stats and bench tables ("hopi", "linlout",
  /// "closure", ...).
  virtual std::string_view Name() const = 0;

  /// True when Distance() returns exact shortest-path lengths; plain
  /// backends report 0 for every connected pair.
  virtual bool with_distance() const = 0;

  // ---- scalar queries (the HopiIndex surface) ----

  /// True iff u ->* v in the element-level graph (reflexive).
  virtual bool IsReachable(NodeId u, NodeId v) const = 0;

  /// Shortest connection length u -> v, or nullopt when unconnected.
  virtual std::optional<uint32_t> Distance(NodeId u, NodeId v) const = 0;

  /// All strict descendants of u (the wildcard // axis), sorted.
  virtual std::vector<NodeId> Descendants(NodeId u) const = 0;

  /// All strict ancestors of u, sorted.
  virtual std::vector<NodeId> Ancestors(NodeId u) const = 0;

  // ---- vectorized queries ----

  /// Batch hook: out[i] = IsReachable(pairs[i]). The default loops over
  /// the scalar call; backends with a cheaper bulk path override it.
  /// Callers that want cross-probe dedup and label caching should go
  /// through QueryEngine::Batch instead of calling this directly.
  virtual std::vector<bool> TestConnections(
      std::span<const NodePair> pairs) const {
    std::vector<bool> out(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = IsReachable(pairs[i].first, pairs[i].second);
    }
    return out;
  }

  // ---- label export (the hot-label cache hook) ----
  //
  // The QueryEngine batch path obtains each probe's LOUT(u)/LIN(v)
  // label set through exactly one of two routes:
  //
  //   borrow — BorrowOutLabel/BorrowInLabel return a LabelView into
  //            storage the backend already owns (an in-memory cover's
  //            vectors, an mmapped file image). Zero copies; the LRU
  //            cache is bypassed entirely.
  //   copy   — OutLabel/InLabel materialize an owned Label (e.g.
  //            LinLoutStore converts table rows). The engine pays the
  //            copy once, stores it in its LRU cache, and serves
  //            repeats from the cache.
  //
  // A backend opts into the borrow route by returning an engaged
  // optional; the engine never mixes routes for one backend call.

  /// @brief True when the backend stores 2-hop labels and can export
  /// them via OutLabel/InLabel (and possibly lend them via the borrow
  /// hooks). Label-less backends (materialized closure, BFS) return
  /// false and the batch path falls back to TestConnections.
  virtual bool HasLabels() const { return false; }

  /// @brief LOUT(u) rows as an owned copy, sorted by center.
  /// @return Empty label for out-of-range nodes.
  virtual Label OutLabel(NodeId /*u*/) const { return {}; }

  /// @brief LIN(v) rows as an owned copy, sorted by center.
  /// @return Empty label for out-of-range nodes.
  virtual Label InLabel(NodeId /*v*/) const { return {}; }

  /// @brief Zero-copy LOUT(u) access (the borrow route).
  /// @return A view that MUST stay valid and immutable for the
  /// backend's lifetime — the engine may hold it across an entire
  /// batch. Backends that would have to materialize rows return
  /// nullopt (the default) and are served through the copy route and
  /// the LRU cache instead. An engaged empty view is a valid answer
  /// ("this node has no label rows").
  virtual std::optional<LabelView> BorrowOutLabel(NodeId /*u*/) const {
    return std::nullopt;
  }

  /// @brief Zero-copy LIN(v) access; contract as BorrowOutLabel.
  virtual std::optional<LabelView> BorrowInLabel(NodeId /*v*/) const {
    return std::nullopt;
  }

  // ---- join export (the vectorized-kernel route) ----
  //
  // The engine's batch path feeds twohop::JoinViews (join_kernel.h)
  // rather than walking LabelEntry spans itself. These hooks let a
  // borrow-route backend hand out the kernel-ready shape directly —
  // packed SoA columns plus a real LabelSummary when it keeps them
  // (an in-memory cover's mirrors), or a strided adapter over its AoS
  // storage otherwise. The defaults adapt the Borrow*Label spans, so
  // backends only override for a better layout. Lifetime contract is
  // BorrowOutLabel's: valid for the backend's lifetime.

  /// @brief LOUT(u) as a borrowed kernel view, or nullopt when the
  /// backend is not on the borrow route.
  virtual std::optional<twohop::JoinView> BorrowOutJoin(NodeId u) const {
    std::optional<LabelView> l = BorrowOutLabel(u);
    if (!l) return std::nullopt;
    return twohop::JoinView::FromEntries(l->data(), l->size());
  }

  /// @brief LIN(v) as a borrowed kernel view; contract as
  /// BorrowOutJoin.
  virtual std::optional<twohop::JoinView> BorrowInJoin(NodeId v) const {
    std::optional<LabelView> l = BorrowInLabel(v);
    if (!l) return std::nullopt;
    return twohop::JoinView::FromEntries(l->data(), l->size());
  }

  // ---- block export (the compressed-label route) ----
  //
  // Backends over block-compressed storage (a v4 MappedLinLoutStore)
  // cannot borrow raw spans, and copying every row through OutLabel
  // would decode a whole block per probe. Instead they name the block
  // that holds a node's row; the engine decodes it once, keeps it in
  // its byte-budgeted cache, and serves every row of the block from
  // memory. Handles are opaque, dense, and stable for the backend's
  // lifetime (they double as cache keys). A backend that returns a
  // handle from Out/InLabelBlock MUST decode it via DecodeLabelBlock.

  /// @brief Handle of the block holding LOUT(u), or nullopt when this
  /// backend has no block-organized labels or u has no rows (the
  /// borrow/copy routes handle those).
  virtual std::optional<uint64_t> OutLabelBlock(NodeId /*u*/) const {
    return std::nullopt;
  }

  /// @brief Handle of the block holding LIN(v); contract as
  /// OutLabelBlock.
  virtual std::optional<uint64_t> InLabelBlock(NodeId /*v*/) const {
    return std::nullopt;
  }

  /// @brief Decodes one block (checksum + structural validation).
  /// Corruption is only reachable when the underlying file was opened
  /// lazily or tampered with after open.
  virtual Result<LabelBlock> DecodeLabelBlock(uint64_t /*handle*/) const {
    return Status::Unsupported("backend has no block-organized labels");
  }
};

}  // namespace hopi::engine
