// ReachabilityBackend: the pluggable access-path seam of the query layer.
//
// The paper's query section (Sec 5.1) treats the 2-hop cover as one
// access path among several — the in-memory labels, the LIN/LOUT
// index-organized tables, and plain traversal / materialized closure.
// This interface captures the operations every access path must answer
// so the QueryEngine facade (engine/engine.h) and the path evaluator
// (query/path_query.h) can run against any of them interchangeably.
//
// Adapters for the three concrete access paths live in
// engine/backends.h. The interface is header-only on purpose: lower
// layers (query) implement against it without linking the engine
// library, which keeps the module graph acyclic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "twohop/cover.h"

namespace hopi::engine {

/// One LIN or LOUT label set: (center, dist) rows sorted by center id.
/// The distance is 0 for backends built without the DIST column.
using Label = std::vector<twohop::LabelEntry>;

/// A single (source, target) reachability probe.
using NodePair = std::pair<NodeId, NodeId>;

class ReachabilityBackend {
 public:
  virtual ~ReachabilityBackend() = default;

  /// Short identifier for stats and bench tables ("hopi", "linlout",
  /// "closure", ...).
  virtual std::string_view Name() const = 0;

  /// True when Distance() returns exact shortest-path lengths; plain
  /// backends report 0 for every connected pair.
  virtual bool with_distance() const = 0;

  // ---- scalar queries (the HopiIndex surface) ----

  /// True iff u ->* v in the element-level graph (reflexive).
  virtual bool IsReachable(NodeId u, NodeId v) const = 0;

  /// Shortest connection length u -> v, or nullopt when unconnected.
  virtual std::optional<uint32_t> Distance(NodeId u, NodeId v) const = 0;

  /// All strict descendants of u (the wildcard // axis), sorted.
  virtual std::vector<NodeId> Descendants(NodeId u) const = 0;

  /// All strict ancestors of u, sorted.
  virtual std::vector<NodeId> Ancestors(NodeId u) const = 0;

  // ---- vectorized queries ----

  /// Batch hook: out[i] = IsReachable(pairs[i]). The default loops over
  /// the scalar call; backends with a cheaper bulk path override it.
  /// Callers that want cross-probe dedup and label caching should go
  /// through QueryEngine::Batch instead of calling this directly.
  virtual std::vector<bool> TestConnections(
      std::span<const NodePair> pairs) const {
    std::vector<bool> out(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = IsReachable(pairs[i].first, pairs[i].second);
    }
    return out;
  }

  // ---- label export (the hot-label cache hook) ----

  /// True when the backend stores 2-hop labels and can export them via
  /// OutLabel/InLabel. Label-less backends (materialized closure, BFS)
  /// return false and the batch path falls back to TestConnections.
  virtual bool HasLabels() const { return false; }

  /// LOUT(u) rows sorted by center; empty for out-of-range nodes.
  virtual Label OutLabel(NodeId /*u*/) const { return {}; }

  /// LIN(v) rows sorted by center; empty for out-of-range nodes.
  virtual Label InLabel(NodeId /*v*/) const { return {}; }

  /// Zero-copy label access: backends whose labels already live in
  /// memory in Label layout return a pointer that stays valid for the
  /// backend's lifetime, and the batch path skips the copy into the LRU
  /// cache. Backends that materialize labels on demand (LinLoutStore
  /// converts table rows) return nullptr and are served through the
  /// cache instead.
  virtual const Label* BorrowOutLabel(NodeId /*u*/) const { return nullptr; }
  virtual const Label* BorrowInLabel(NodeId /*v*/) const { return nullptr; }
};

}  // namespace hopi::engine
