#include "engine/snapshot.h"

#include <atomic>
#include <memory>
#include <utility>

#include "engine/backends.h"
#include "engine/hopi_backend.h"
#include "twohop/cover.h"

namespace hopi::engine {

namespace {

uint64_t NextVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

struct FreezeHolder {
  // Order matters: the index holds a pointer into `collection`, so the
  // collection member must be constructed first and destroyed last.
  collection::Collection collection;
  HopiIndex index;

  FreezeHolder(const collection::Collection& source_collection,
               twohop::TwoHopCover cover, bool with_distance)
      : collection(source_collection),
        index(&collection, std::move(cover), with_distance) {}
};

}  // namespace

BackendSnapshot::BackendSnapshot(
    std::shared_ptr<const collection::Collection> collection,
    std::string_view backend_name,
    std::function<std::unique_ptr<ReachabilityBackend>()> make_backend,
    std::shared_ptr<const void> keepalive,
    std::shared_ptr<const query::TagIndex> tags)
    : version_(NextVersion()),
      backend_name_(backend_name),
      collection_(std::move(collection)),
      tags_(tags ? std::move(tags)
                 : std::make_shared<query::TagIndex>(*collection_)),
      make_backend_(std::move(make_backend)),
      keepalive_(std::move(keepalive)) {}

std::shared_ptr<const BackendSnapshot> BackendSnapshot::OfIndex(
    std::shared_ptr<const HopiIndex> index,
    std::shared_ptr<const query::TagIndex> tags) {
  const HopiIndex* raw = index.get();
  auto collection = std::shared_ptr<const collection::Collection>(
      index, raw->collection());
  return std::shared_ptr<const BackendSnapshot>(new BackendSnapshot(
      std::move(collection), "hopi",
      [raw] { return std::make_unique<HopiIndexBackend>(*raw); },
      std::move(index), std::move(tags)));
}

std::shared_ptr<const BackendSnapshot> BackendSnapshot::OfStore(
    std::shared_ptr<const collection::Collection> collection,
    std::shared_ptr<const storage::LinLoutStore> store,
    std::shared_ptr<const query::TagIndex> tags) {
  const storage::LinLoutStore* raw = store.get();
  return std::shared_ptr<const BackendSnapshot>(new BackendSnapshot(
      std::move(collection), "linlout",
      [raw] { return std::make_unique<LinLoutBackend>(*raw); },
      std::move(store), std::move(tags)));
}

std::shared_ptr<const BackendSnapshot> BackendSnapshot::OfMappedStore(
    std::shared_ptr<const collection::Collection> collection,
    std::shared_ptr<const storage::MappedLinLoutStore> store,
    std::shared_ptr<const query::TagIndex> tags) {
  const storage::MappedLinLoutStore* raw = store.get();
  return std::shared_ptr<const BackendSnapshot>(new BackendSnapshot(
      std::move(collection), "mapped",
      [raw] { return std::make_unique<MappedLinLoutBackend>(*raw); },
      std::move(store), std::move(tags)));
}

std::shared_ptr<const BackendSnapshot> BackendSnapshot::OfClosure(
    std::shared_ptr<const collection::Collection> collection,
    std::shared_ptr<const TransitiveClosureIndex> closure,
    bool with_distance,
    std::shared_ptr<const query::TagIndex> tags) {
  const TransitiveClosureIndex* raw = closure.get();
  return std::shared_ptr<const BackendSnapshot>(new BackendSnapshot(
      std::move(collection), "closure",
      [raw, with_distance] {
        return std::make_unique<ClosureBackend>(*raw, with_distance);
      },
      std::move(closure), std::move(tags)));
}

std::shared_ptr<const BackendSnapshot> BackendSnapshot::Freeze(
    const HopiIndex& index) {
  auto holder = std::make_shared<FreezeHolder>(
      *index.collection(), index.cover(), index.with_distance());
  const HopiIndex* raw = &holder->index;
  auto collection = std::shared_ptr<const collection::Collection>(
      holder, &holder->collection);
  return std::shared_ptr<const BackendSnapshot>(new BackendSnapshot(
      std::move(collection), "hopi",
      [raw] { return std::make_unique<HopiIndexBackend>(*raw); },
      std::move(holder), nullptr));
}

}  // namespace hopi::engine
