// QueryEngine: the unified facade over the paper's access paths.
//
// Owns the glue a search engine needs around one ReachabilityBackend —
// the collection, the tag inverted index, an optional tag-similarity
// ontology, and a bounded LRU cache of hot LIN/LOUT label sets — and
// exposes typed request/response structs so raw reachability, batched
// reachability joins, and wildcard path queries all flow through one
// entry point (paper Sec 5.1; ROADMAP items "batch reachability joins"
// and "cache hot LIN/LOUT sets").
//
// The batch path dedupes repeated (u, v) probes across a request and
// intersects label sets served from the LRU cache; per-call hit/miss
// counters are surfaced in the response stats.
//
// Threading model: a QueryEngine is single-threaded — the label cache
// mutates on reads, so exactly one thread may call Batch/Query/
// Reachability on an engine (the cache's *stats* accessors are the one
// exception: reading them from another thread is safe, see
// label_cache.h). Run one engine per serving thread; they can share
// the backend (immutable) and a pre-built tag index
// (QueryEngineOptions::shared_tags). engine/engine_pool.h packages
// exactly that arrangement: N per-thread engines over one shared
// BackendSnapshot, swappable at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "engine/backend.h"
#include "engine/label_cache.h"
#include "hopi/baseline.h"
#include "hopi/index.h"
#include "query/path_query.h"
#include "query/similarity.h"
#include "query/tag_index.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "util/result.h"

namespace hopi::engine {

struct QueryEngineOptions {
  /// Byte budget of the hot-label cache (decoded v4 blocks and copied
  /// label sets share it; see engine/label_cache.h for the accounting
  /// and the pinning rule). 0 disables caching — correct, just cold.
  size_t label_cache_bytes = 4 * 1024 * 1024;
  /// Ontology for ~tag path steps; approximate steps behave like exact
  /// ones when unset.
  std::optional<query::TagSimilarity> similarity = std::nullopt;
  /// Pre-built tag index to share instead of building one per engine
  /// (construction is O(collection)). Must have been built over the
  /// same collection the engine is constructed with; TagIndex is
  /// immutable after construction, so any number of engines — and
  /// threads — can share one. EnginePool workers rebinding to a fresh
  /// BackendSnapshot use this to make engine construction O(1).
  std::shared_ptr<const query::TagIndex> shared_tags = nullptr;
};

// ---- typed requests / responses ----

struct ReachabilityRequest {
  NodeId source = 0;
  NodeId target = 0;
  /// Also compute the connection length (meaningful for distance-aware
  /// backends; plain ones report 0 for connected pairs).
  bool want_distance = false;
};

struct ReachabilityResponse {
  bool reachable = false;
  /// Set iff want_distance and the pair is connected.
  std::optional<uint32_t> distance;
};

struct BatchRequest {
  std::vector<NodePair> pairs;
  bool want_distances = false;
  /// Optional worker-affinity key for EnginePool submissions: requests
  /// with the same hint land on the same worker lane (hint % workers),
  /// so a client that shards its keyspace keeps each key range's labels
  /// in one worker's cache. Unset = the pool's dispatch policy picks.
  /// Ignored outside EnginePool.
  std::optional<uint64_t> lane_hint = std::nullopt;
};

/// Per-call accounting of one Batch() evaluation. Label fetches take
/// exactly one of three routes — borrow, block, or copy — and the
/// latter two go through the cache, so for label-carrying backends
/// `cache_hits + cache_misses + labels_borrowed == 2 * (unique probes
/// with u != v)`, and `backend_probes` is non-zero only for label-less
/// backends.
struct BatchStats {
  /// Pairs in the request, including duplicates.
  size_t probes = 0;
  /// Distinct (u, v) pairs actually evaluated after in-batch dedup.
  size_t unique_probes = 0;
  /// Label sets served from the engine's cache (copy or block route,
  /// warm).
  size_t cache_hits = 0;
  /// Label sets the cache could not serve (copy or block route, cold —
  /// the backend materialized a label or the engine decoded a block).
  size_t cache_misses = 0;
  /// Label sets lent by the backend as views over its own storage —
  /// in-memory covers, raw mmapped file images (borrow route; the
  /// cache is bypassed).
  size_t labels_borrowed = 0;
  /// Compressed blocks decoded during this batch (block-route misses;
  /// always <= cache_misses).
  size_t blocks_decoded = 0;
  /// Probes answered by the backend's vectorized TestConnections
  /// (label-less backends only).
  size_t backend_probes = 0;
};

struct BatchResponse {
  /// Parallel to BatchRequest::pairs. Duplicate pairs are answered
  /// once and the answer is scattered back to every occurrence, so
  /// responses are position-for-position identical to evaluating each
  /// pair naively — dedup is an optimization, never a semantic change.
  std::vector<bool> reachable;
  /// Parallel to pairs when want_distances; empty otherwise.
  std::vector<std::optional<uint32_t>> distances;
  /// First block-decode failure hit during the batch (only reachable
  /// over lazily opened or tampered-with compressed stores). Probes
  /// whose labels failed to decode report unreachable; everything else
  /// in the response is exact.
  Status error = Status::OK();
  BatchStats stats;
};

struct PathQueryRequest {
  /// "//book//~author" — parsed with query::PathExpression::Parse.
  std::string expression;
  /// Maximum matches to materialize (ignored when count_only).
  size_t max_matches = 1000;
  /// Drop matches with a step distance above this (distance-aware
  /// backends only).
  uint32_t max_step_distance = UINT32_MAX;
  /// Synonyms below this similarity are not expanded for ~tag steps.
  double min_tag_similarity = 0.3;
  /// Count distinct final-step elements instead of materializing
  /// matches (the typical "find all results" engine call). Counting
  /// always uses exact semantics: max_step_distance, min_tag_similarity
  /// and the engine's ontology apply only to materializing queries
  /// (matching the pre-facade CountPathResults contract).
  bool count_only = false;
};

struct PathQueryResponse {
  /// Ranked matches; empty when count_only.
  std::vector<query::PathMatch> matches;
  /// matches.size(), or the distinct final-step count when count_only.
  size_t count = 0;
};

// ---- the facade ----

class QueryEngine {
 public:
  /// Takes ownership of the backend; `collection` must outlive the
  /// engine (the tag index is built here, so construction is O(n)).
  QueryEngine(const collection::Collection& collection,
              std::unique_ptr<ReachabilityBackend> backend,
              QueryEngineOptions options = {});

  // Convenience factories over the four standard access paths. The
  // wrapped index/store/closure is NOT owned and must outlive the
  // engine.
  static QueryEngine ForIndex(const HopiIndex& index,
                              QueryEngineOptions options = {});
  static QueryEngine ForStore(const collection::Collection& collection,
                              const storage::LinLoutStore& store,
                              QueryEngineOptions options = {});
  /// Serves batch queries zero-copy off the mmapped file image (the
  /// borrow route; the label cache stays cold).
  static QueryEngine ForMappedStore(const collection::Collection& collection,
                                    const storage::MappedLinLoutStore& store,
                                    QueryEngineOptions options = {});
  static QueryEngine ForClosure(const collection::Collection& collection,
                                const TransitiveClosureIndex& closure,
                                bool with_distance,
                                QueryEngineOptions options = {});

  /// Single reachability probe (bypasses the batch machinery).
  ReachabilityResponse Reachability(const ReachabilityRequest& request) const;

  /// @brief Batched reachability over one request.
  ///
  /// Dedup guarantee: repeated (u, v) pairs are evaluated once per
  /// batch and the answers scattered back, so the response is
  /// position-for-position what per-pair evaluation would return.
  /// Label sets are obtained via the backend's borrow hooks when
  /// offered (zero-copy) and through the LRU cache otherwise; see
  /// BatchStats for the per-call route accounting.
  BatchResponse Batch(const BatchRequest& request) const;

  /// Wildcard path query ("//a//~b//c") evaluated against the backend.
  Result<PathQueryResponse> Query(const PathQueryRequest& request) const;

  // Axis enumeration pass-throughs.
  std::vector<NodeId> Descendants(NodeId u) const {
    return backend_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const {
    return backend_->Ancestors(u);
  }

  const ReachabilityBackend& backend() const { return *backend_; }
  const collection::Collection& collection() const { return *collection_; }
  const query::TagIndex& tags() const { return *tags_; }
  /// Lifetime counters of the hot-label cache (across all batches).
  /// Backends on the borrow route never touch it — expect zeros there.
  /// The cache's stats accessors are safe from any thread; everything
  /// else on it belongs to the engine's serving thread (label_cache.h
  /// documents the rule).
  const LabelCache& label_cache() const { return cache_; }
  /// One relaxed snapshot of those counters — byte accounting
  /// (bytes_resident, byte_budget) and decode accounting
  /// (blocks_decoded, decode_nanos) included. Safe from any thread.
  LabelCache::Stats CacheStats() const { return cache_.StatsSnapshot(); }

 private:
  /// One label fetch, as the join kernels want it: borrow from the
  /// backend when offered (kernel views straight off a cover's SoA
  /// mirrors, strided walks over mmapped images), else serve a pinned
  /// block through the byte-budgeted cache (decoding it on a
  /// block-route miss, materializing a one-row block on a copy-route
  /// miss) and hand out its packed JoinRow. Counts the route taken
  /// into `stats`; the first decode failure lands in `*error` and
  /// yields an empty view. The returned PinnedJoin keeps the view
  /// valid regardless of later fetches or evictions — exactly as long
  /// as the batch join needs it.
  PinnedJoin FetchJoinLabel(LabelCache::Side side, NodeId node,
                            BatchStats* stats, Status* error) const;

  const collection::Collection* collection_;
  std::unique_ptr<ReachabilityBackend> backend_;
  std::shared_ptr<const query::TagIndex> tags_;
  std::optional<query::TagSimilarity> similarity_;
  mutable LabelCache cache_;
};

}  // namespace hopi::engine
