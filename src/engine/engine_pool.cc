#include "engine/engine_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <string>
#include <utility>

namespace hopi::engine {
namespace {

/// Best-effort message for the in-flight exception (what() when it is
/// a std::exception).
std::string DescribeCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace

AdmissionController::AdmissionController(size_t high, size_t low)
    : high_(high),
      low_(high == 0 ? 0 : std::min(low == 0 ? high / 2 : low, high - 1)) {}

bool AdmissionController::Admit(size_t load) {
  if (high_ == 0) return true;
  if (shedding_.load(std::memory_order_relaxed)) {
    if (load > low_) return false;
    shedding_.store(false, std::memory_order_relaxed);
    return true;
  }
  if (load >= high_) {
    shedding_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

EnginePool::EnginePool(std::shared_ptr<const BackendSnapshot> snapshot,
                       EnginePoolOptions options)
    : options_(std::move(options)),
      admission_(options_.shed_high_watermark, options_.shed_low_watermark),
      queue_(options_.num_threads != 0
                 ? options_.num_threads
                 : std::max<size_t>(1, std::thread::hardware_concurrency()),
             options_.queue_capacity),
      published_(std::move(snapshot)) {
  assert(published_ && "EnginePool requires a non-null initial snapshot");
  size_t n = queue_.NumLanes();
  workers_.reserve(n);
  for (size_t lane = 0; lane < n; ++lane) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  // Spawn after every WorkerState exists so a fast worker never races
  // the vector growing.
  for (size_t lane = 0; lane < n; ++lane) {
    workers_[lane]->thread = std::thread([this, lane] { WorkerLoop(lane); });
  }
}

EnginePool::~EnginePool() { Shutdown(); }

void EnginePool::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    shutdown_.store(true, std::memory_order_release);
    queue_.Close();  // wakes every worker; Pop drains queued items first
    for (auto& ws : workers_) {
      if (ws->thread.joinable()) ws->thread.join();
    }
  });
}

Status EnginePool::CheckAcceptingOr(const char* what) const {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        std::string(what) + " on a shut-down EnginePool");
  }
  return Status::OK();
}

size_t EnginePool::PickLane() {
  size_t cursor =
      next_lane_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  if (options_.dispatch == EnginePoolOptions::Dispatch::kRoundRobin) {
    return cursor;
  }
  // Least loaded = queued + executing. Starting the scan at the
  // rotating cursor breaks all-idle ties round-robin instead of
  // funneling a one-at-a-time request stream into lane 0 while its
  // worker is still busy.
  std::vector<size_t> depths = queue_.Depths();
  size_t best = cursor;
  size_t best_load = SIZE_MAX;
  for (size_t k = 0; k < workers_.size(); ++k) {
    size_t lane = (cursor + k) % workers_.size();
    size_t load = depths[lane] +
                  workers_[lane]->inflight.load(std::memory_order_relaxed);
    if (load < best_load) {
      best_load = load;
      best = lane;
    }
  }
  return best;
}

size_t EnginePool::PendingLoad() const {
  size_t load = queue_.TotalQueued();
  for (const auto& ws : workers_) {
    load += ws->inflight.load(std::memory_order_relaxed);
  }
  return load;
}

Status EnginePool::Enqueue(WorkItem item, const char* what) {
  HOPI_RETURN_NOT_OK(CheckAcceptingOr(what));
  if (!admission_.Admit(PendingLoad())) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        std::string(what) + " shed: pending load over the high watermark");
  }
  switch (queue_.TryPush(PickLane(), std::move(item))) {
    case LanePush::kAccepted:
      return Status::OK();
    case LanePush::kShed:
      sheds_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::string(what) + " shed: worker lane at capacity");
    case LanePush::kClosed:
      break;
  }
  return Status::FailedPrecondition(
      std::string(what) + " on a shut-down EnginePool");
}

Result<std::future<PoolBatchResponse>> EnginePool::SubmitBatch(
    BatchRequest request) {
  WorkItem item;
  item.batch.emplace(BatchJob{std::move(request), {}, nullptr});
  std::future<PoolBatchResponse> future = item.batch->promise.get_future();
  HOPI_RETURN_NOT_OK(Enqueue(std::move(item), "SubmitBatch"));
  return future;
}

Result<std::future<PoolPathResponse>> EnginePool::SubmitQuery(
    PathQueryRequest request) {
  WorkItem item;
  item.path.emplace(PathJob{std::move(request), {}, nullptr});
  std::future<PoolPathResponse> future = item.path->promise.get_future();
  HOPI_RETURN_NOT_OK(Enqueue(std::move(item), "SubmitQuery"));
  return future;
}

Status EnginePool::SubmitBatch(
    BatchRequest request,
    std::function<void(Result<PoolBatchResponse>)> on_done) {
  assert(on_done && "SubmitBatch callback form requires a callback");
  WorkItem item;
  item.batch.emplace(BatchJob{std::move(request), {}, std::move(on_done)});
  return Enqueue(std::move(item), "SubmitBatch");
}

Status EnginePool::SubmitQuery(
    PathQueryRequest request,
    std::function<void(Result<PoolPathResponse>)> on_done) {
  assert(on_done && "SubmitQuery callback form requires a callback");
  WorkItem item;
  item.path.emplace(PathJob{std::move(request), {}, std::move(on_done)});
  return Enqueue(std::move(item), "SubmitQuery");
}

Result<PoolBatchResponse> EnginePool::Batch(BatchRequest request) {
  HOPI_ASSIGN_OR_RETURN(std::future<PoolBatchResponse> future,
                        SubmitBatch(std::move(request)));
  return future.get();
}

Result<PoolPathResponse> EnginePool::Query(PathQueryRequest request) {
  HOPI_ASSIGN_OR_RETURN(std::future<PoolPathResponse> future,
                        SubmitQuery(std::move(request)));
  return future.get();
}

void EnginePool::Swap(std::shared_ptr<const BackendSnapshot> snapshot) {
  assert(snapshot && "Swap requires a non-null snapshot");
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    published_ = std::move(snapshot);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const BackendSnapshot> EnginePool::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return published_;
}

const BackendSnapshot& EnginePool::BindCurrentSnapshot(WorkerState* ws) {
  std::shared_ptr<const BackendSnapshot> current = snapshot();
  if (ws->snapshot != current) {
    QueryEngineOptions engine_options;
    engine_options.label_cache_bytes = options_.label_cache_bytes;
    engine_options.similarity = options_.similarity;
    engine_options.shared_tags = current->tags();
    // Pin the rebind so a concurrent WorkerCacheStats() never reads a
    // half-destroyed engine. The lock is uncontended on the hot path
    // (taken here only when the snapshot actually changed).
    std::lock_guard<std::mutex> lock(ws->rebind_mu);
    ws->engine.emplace(current->collection(), current->MakeBackend(),
                       std::move(engine_options));
    ws->snapshot = std::move(current);
    ws->rebinds.fetch_add(1, std::memory_order_relaxed);
  }
  return *ws->snapshot;
}

void EnginePool::WorkerLoop(size_t lane) {
  WorkerState& ws = *workers_[lane];
  while (std::optional<WorkItem> item = queue_.Pop(lane)) {
    ws.inflight.store(1, std::memory_order_relaxed);
    // Exception barrier: a throw (rebind allocation, backend fault,
    // bad_alloc on a huge batch) fails the one request through its
    // promise instead of escaping the thread body and terminating the
    // process — the serving-worker analogue of util::ThreadPool's
    // error channel.
    try {
      const BackendSnapshot& snap = BindCurrentSnapshot(&ws);
      if (item->batch) {
        BatchResponse response = ws.engine->Batch(item->batch->request);
        const BatchStats& stats = response.stats;
        ws.probes.fetch_add(stats.probes, std::memory_order_relaxed);
        ws.unique_probes.fetch_add(stats.unique_probes,
                                   std::memory_order_relaxed);
        ws.cache_hits.fetch_add(stats.cache_hits, std::memory_order_relaxed);
        ws.cache_misses.fetch_add(stats.cache_misses,
                                  std::memory_order_relaxed);
        ws.labels_borrowed.fetch_add(stats.labels_borrowed,
                                     std::memory_order_relaxed);
        ws.blocks_decoded.fetch_add(stats.blocks_decoded,
                                    std::memory_order_relaxed);
        ws.backend_probes.fetch_add(stats.backend_probes,
                                    std::memory_order_relaxed);
        ws.batches.fetch_add(1, std::memory_order_relaxed);
        PoolBatchResponse out{std::move(response), snap.version(), lane};
        if (item->batch->on_done) {
          // Detach first so the catch-all below cannot double-deliver
          // if the callback itself throws.
          auto on_done = std::move(item->batch->on_done);
          item->batch->on_done = nullptr;
          on_done(std::move(out));
        } else {
          item->batch->promise.set_value(std::move(out));
        }
      } else {
        Result<PathQueryResponse> result =
            ws.engine->Query(item->path->request);
        ws.path_queries.fetch_add(1, std::memory_order_relaxed);
        PoolPathResponse out{std::move(result), snap.version(), lane};
        if (item->path->on_done) {
          auto on_done = std::move(item->path->on_done);
          item->path->on_done = nullptr;
          on_done(std::move(out));
        } else {
          item->path->promise.set_value(std::move(out));
        }
      }
    } catch (...) {
      // Callback jobs get a typed error Result; future jobs get the
      // exception itself (the pre-callback contract).
      Status error = Status::Internal("serving worker failed: " +
                                      DescribeCurrentException());
      try {
        if (item->batch) {
          if (item->batch->on_done) {
            try {
              item->batch->on_done(error);
            } catch (...) {
              // Callbacks must not throw; swallowing here keeps the
              // worker alive (contract documented on SubmitBatch).
            }
          } else {
            item->batch->promise.set_exception(std::current_exception());
          }
        } else {
          if (item->path->on_done) {
            try {
              item->path->on_done(error);
            } catch (...) {
            }
          } else {
            item->path->promise.set_exception(std::current_exception());
          }
        }
      } catch (const std::future_error&) {
        // The promise was already satisfied (set_value threw after
        // delivering): the client has its answer; nothing to report.
      }
    }
    ws.inflight.store(0, std::memory_order_relaxed);
  }
  // Drop the worker's snapshot reference promptly on exit so Shutdown
  // is also a release of the served index.
  std::lock_guard<std::mutex> lock(ws.rebind_mu);
  ws.engine.reset();
  ws.snapshot.reset();
}

PoolStats EnginePool::Stats() const {
  PoolStats stats;
  for (const auto& ws : workers_) {
    stats.batches += ws->batches.load(std::memory_order_relaxed);
    stats.path_queries += ws->path_queries.load(std::memory_order_relaxed);
    stats.probes += ws->probes.load(std::memory_order_relaxed);
    stats.unique_probes += ws->unique_probes.load(std::memory_order_relaxed);
    stats.cache_hits += ws->cache_hits.load(std::memory_order_relaxed);
    stats.cache_misses += ws->cache_misses.load(std::memory_order_relaxed);
    stats.labels_borrowed +=
        ws->labels_borrowed.load(std::memory_order_relaxed);
    stats.blocks_decoded +=
        ws->blocks_decoded.load(std::memory_order_relaxed);
    stats.backend_probes += ws->backend_probes.load(std::memory_order_relaxed);
    stats.rebinds += ws->rebinds.load(std::memory_order_relaxed);
  }
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.snapshot_version = snapshot()->version();
  stats.sheds = sheds_.load(std::memory_order_relaxed);
  stats.queued = queue_.TotalQueued();
  for (const auto& ws : workers_) {
    stats.executing += ws->inflight.load(std::memory_order_relaxed);
  }
  stats.shedding = admission_.shedding();
  return stats;
}

std::vector<LabelCache::Stats> EnginePool::WorkerCacheStats() const {
  std::vector<LabelCache::Stats> per_worker;
  per_worker.reserve(workers_.size());
  for (const auto& ws : workers_) {
    std::lock_guard<std::mutex> lock(ws->rebind_mu);
    per_worker.push_back(ws->engine ? ws->engine->label_cache().StatsSnapshot()
                                    : LabelCache::Stats{});
  }
  return per_worker;
}

}  // namespace hopi::engine
