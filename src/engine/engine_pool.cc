#include "engine/engine_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <string>
#include <utility>

#include "hopi/build.h"
#include "util/timer.h"

namespace hopi::engine {
namespace {

/// Best-effort message for the in-flight exception (what() when it is
/// a std::exception).
std::string DescribeCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace

AdmissionController::AdmissionController(size_t high, size_t low)
    : high_(high),
      low_(high == 0 ? 0 : std::min(low == 0 ? high / 2 : low, high - 1)) {}

bool AdmissionController::Admit(size_t load) {
  if (high_ == 0) return true;
  if (shedding_.load(std::memory_order_relaxed)) {
    if (load > low_) return false;
    shedding_.store(false, std::memory_order_relaxed);
    return true;
  }
  if (load >= high_) {
    shedding_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

EnginePool::EnginePool(std::shared_ptr<const BackendSnapshot> snapshot,
                       EnginePoolOptions options)
    : options_(std::move(options)),
      admission_(options_.shed_high_watermark, options_.shed_low_watermark),
      queue_(options_.num_threads != 0
                 ? options_.num_threads
                 : std::max<size_t>(1, std::thread::hardware_concurrency()),
             options_.queue_capacity) {
  assert(snapshot && "EnginePool requires a non-null initial snapshot");
  auto state = std::make_shared<ServingState>();
  state->delta = DeltaState::MakeEmpty(snapshot->collection().NumElements(),
                                       snapshot->collection().NumDocuments(),
                                       /*generation=*/0);
  state->snapshot = std::move(snapshot);
  published_ = std::move(state);
  size_t n = queue_.NumLanes();
  workers_.reserve(n);
  for (size_t lane = 0; lane < n; ++lane) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  // Spawn after every WorkerState exists so a fast worker never races
  // the vector growing.
  for (size_t lane = 0; lane < n; ++lane) {
    workers_[lane]->thread = std::thread([this, lane] { WorkerLoop(lane); });
  }
}

EnginePool::~EnginePool() { Shutdown(); }

void EnginePool::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    shutdown_.store(true, std::memory_order_release);
    queue_.Close();  // wakes every worker; Pop drains queued items first
    for (auto& ws : workers_) {
      if (ws->thread.joinable()) ws->thread.join();
    }
  });
}

Status EnginePool::CheckAcceptingOr(const char* what) const {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        std::string(what) + " on a shut-down EnginePool");
  }
  return Status::OK();
}

size_t EnginePool::PickLane(std::optional<uint64_t> lane_hint) {
  if (lane_hint.has_value()) {
    return static_cast<size_t>(*lane_hint % workers_.size());
  }
  size_t cursor =
      next_lane_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  if (options_.dispatch == EnginePoolOptions::Dispatch::kRoundRobin) {
    return cursor;
  }
  // Least loaded = queued + executing. Starting the scan at the
  // rotating cursor breaks all-idle ties round-robin instead of
  // funneling a one-at-a-time request stream into lane 0 while its
  // worker is still busy.
  std::vector<size_t> depths = queue_.Depths();
  size_t best = cursor;
  size_t best_load = SIZE_MAX;
  for (size_t k = 0; k < workers_.size(); ++k) {
    size_t lane = (cursor + k) % workers_.size();
    size_t load = depths[lane] +
                  workers_[lane]->inflight.load(std::memory_order_relaxed);
    if (load < best_load) {
      best_load = load;
      best = lane;
    }
  }
  return best;
}

size_t EnginePool::PendingLoad() const {
  size_t load = queue_.TotalQueued();
  for (const auto& ws : workers_) {
    load += ws->inflight.load(std::memory_order_relaxed);
  }
  return load;
}

Status EnginePool::Enqueue(WorkItem item, const char* what) {
  HOPI_RETURN_NOT_OK(CheckAcceptingOr(what));
  if (!admission_.Admit(PendingLoad())) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        std::string(what) + " shed: pending load over the high watermark");
  }
  std::optional<uint64_t> lane_hint =
      item.batch ? item.batch->request.lane_hint : std::nullopt;
  switch (queue_.TryPush(PickLane(lane_hint), std::move(item))) {
    case LanePush::kAccepted:
      return Status::OK();
    case LanePush::kShed:
      sheds_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::string(what) + " shed: worker lane at capacity");
    case LanePush::kClosed:
      break;
  }
  return Status::FailedPrecondition(
      std::string(what) + " on a shut-down EnginePool");
}

Result<std::future<PoolBatchResponse>> EnginePool::SubmitBatch(
    BatchRequest request) {
  WorkItem item;
  item.batch.emplace(BatchJob{std::move(request), {}, nullptr});
  std::future<PoolBatchResponse> future = item.batch->promise.get_future();
  HOPI_RETURN_NOT_OK(Enqueue(std::move(item), "SubmitBatch"));
  return future;
}

Result<std::future<PoolPathResponse>> EnginePool::SubmitQuery(
    PathQueryRequest request) {
  WorkItem item;
  item.path.emplace(PathJob{std::move(request), {}, nullptr});
  std::future<PoolPathResponse> future = item.path->promise.get_future();
  HOPI_RETURN_NOT_OK(Enqueue(std::move(item), "SubmitQuery"));
  return future;
}

Status EnginePool::SubmitBatch(
    BatchRequest request,
    std::function<void(Result<PoolBatchResponse>)> on_done) {
  assert(on_done && "SubmitBatch callback form requires a callback");
  WorkItem item;
  item.batch.emplace(BatchJob{std::move(request), {}, std::move(on_done)});
  return Enqueue(std::move(item), "SubmitBatch");
}

Status EnginePool::SubmitQuery(
    PathQueryRequest request,
    std::function<void(Result<PoolPathResponse>)> on_done) {
  assert(on_done && "SubmitQuery callback form requires a callback");
  WorkItem item;
  item.path.emplace(PathJob{std::move(request), {}, std::move(on_done)});
  return Enqueue(std::move(item), "SubmitQuery");
}

Result<PoolBatchResponse> EnginePool::Batch(BatchRequest request) {
  HOPI_ASSIGN_OR_RETURN(std::future<PoolBatchResponse> future,
                        SubmitBatch(std::move(request)));
  return future.get();
}

Result<PoolPathResponse> EnginePool::Query(PathQueryRequest request) {
  HOPI_ASSIGN_OR_RETURN(std::future<PoolPathResponse> future,
                        SubmitQuery(std::move(request)));
  return future.get();
}

std::shared_ptr<const EnginePool::ServingState> EnginePool::State() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return published_;
}

void EnginePool::Publish(std::shared_ptr<const BackendSnapshot> snapshot,
                         std::shared_ptr<const DeltaState> delta,
                         bool count_swap) {
  auto state = std::make_shared<ServingState>();
  state->snapshot = std::move(snapshot);
  state->delta = std::move(delta);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    published_ = std::move(state);
  }
  if (count_swap) swaps_.fetch_add(1, std::memory_order_relaxed);
}

void EnginePool::Swap(std::shared_ptr<const BackendSnapshot> snapshot) {
  assert(snapshot && "Swap requires a non-null snapshot");
  std::lock_guard<std::mutex> lock(mutation_mu_);
  // An externally built snapshot invalidates the maintenance mirror, so
  // Swap turns the write path off (header comment documents this; call
  // EnableMutations again to re-arm). The global generation survives.
  maintenance_.reset();
  uint64_t generation = State()->delta->generation();
  auto delta = DeltaState::MakeEmpty(snapshot->collection().NumElements(),
                                     snapshot->collection().NumDocuments(),
                                     generation);
  Publish(std::move(snapshot), std::move(delta), /*count_swap=*/true);
}

std::shared_ptr<const BackendSnapshot> EnginePool::snapshot() const {
  return State()->snapshot;
}

std::shared_ptr<const DeltaState> EnginePool::delta() const {
  return State()->delta;
}

size_t EnginePool::ServingElementCount() const {
  return State()->delta->num_elements();
}

size_t EnginePool::ServingDocumentCount() const {
  return State()->delta->num_documents();
}

double EnginePool::MaintenanceDegradation() const {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return maintenance_ ? maintenance_->index->DegradationFactor() : 1.0;
}

bool EnginePool::mutations_enabled() const {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return maintenance_ != nullptr;
}

Status EnginePool::EnableMutations(const HopiIndex& source) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::shared_ptr<const ServingState> state = State();
  if (!state->delta->empty()) {
    return Status::FailedPrecondition(
        "EnableMutations with a non-empty published delta");
  }
  const collection::Collection& base = state->snapshot->collection();
  if (source.collection() == nullptr ||
      source.collection()->NumElements() != base.NumElements() ||
      source.collection()->NumDocuments() != base.NumDocuments()) {
    return Status::InvalidArgument(
        "EnableMutations: source index does not match the published "
        "snapshot's collection");
  }
  auto maintenance = std::make_unique<MaintenanceState>();
  maintenance->collection =
      std::make_unique<collection::Collection>(*source.collection());
  maintenance->index.emplace(maintenance->collection.get(),
                             twohop::TwoHopCover(source.cover()),
                             source.with_distance());
  maintenance_ = std::move(maintenance);
  maintenance_with_distance_ = source.with_distance();
  if (!overlay_pool_) {
    // Created once and kept for the pool's lifetime: worker overlay
    // backends hold the raw pointer and may outlive a later Swap().
    overlay_pool_ = std::make_unique<ThreadPool>(
        std::max<size_t>(1, options_.overlay_threads));
  }
  return Status::OK();
}

Status EnginePool::ApplyToMaintenance(MaintenanceState* maintenance,
                                      const Mutation& mutation) {
  switch (mutation.kind) {
    case Mutation::Kind::kInsertLink:
      return maintenance->index->InsertLink(mutation.source, mutation.target);
    case Mutation::Kind::kDeleteLink:
      return maintenance->index->DeleteLink(mutation.source, mutation.target);
    case Mutation::Kind::kInsertDocument: {
      // Same replay as ApplyMutationToCollection, then the Sec-6
      // insert-document merge; the sequential id allocation here is
      // what the delta's id pre-computation mirrors.
      collection::DocId doc =
          maintenance->collection->AddDocument(mutation.doc_name);
      std::vector<NodeId> ids;
      ids.reserve(mutation.elements.size());
      for (const NewElementSpec& spec : mutation.elements) {
        NodeId parent =
            spec.parent.has_value() ? ids[*spec.parent] : kInvalidNode;
        ids.push_back(
            maintenance->collection->AddElement(doc, spec.tag, parent));
      }
      return maintenance->index->InsertDocument(doc);
    }
    case Mutation::Kind::kDeleteDocument:
      return maintenance->index->DeleteDocument(mutation.doc);
  }
  return Status::Internal("unknown mutation kind");
}

Result<MutationReceipt> EnginePool::ApplyMutation(const Mutation& mutation) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (!maintenance_) {
    return Status::FailedPrecondition(
        "mutations not enabled on this EnginePool (EnableMutations)");
  }
  std::shared_ptr<const ServingState> state = State();
  if (options_.max_delta_ops != 0 &&
      state->delta->num_ops() >= options_.max_delta_ops) {
    return Status::ResourceExhausted(
        "delta at capacity (max_delta_ops); retry after the next rebuild");
  }
  // Validate against base ∪ delta FIRST: a rejected op must leave both
  // the delta and the maintenance mirror untouched.
  Result<std::shared_ptr<const DeltaState>> next =
      state->delta->Apply(mutation, state->snapshot->collection());
  if (!next.ok()) {
    mutation_failures_.fetch_add(1, std::memory_order_relaxed);
    return next.status();
  }
  // The delta's validation is intended to be exactly as strict as the
  // Sec-6 preconditions; a divergence here would desynchronize the
  // mirror, so surface it loudly and publish nothing.
  Status maintained = ApplyToMaintenance(maintenance_.get(), mutation);
  if (!maintained.ok()) {
    mutation_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(
        "maintenance index rejected a delta-validated op: " +
        maintained.message());
  }
  std::shared_ptr<const DeltaState> delta = std::move(next).value();
  Publish(state->snapshot, delta, /*count_swap=*/false);
  mutations_.fetch_add(1, std::memory_order_relaxed);

  MutationReceipt receipt;
  receipt.generation = delta->generation();
  receipt.snapshot_version = state->snapshot->version();
  if (mutation.kind == Mutation::Kind::kInsertDocument) {
    receipt.doc = static_cast<collection::DocId>(delta->num_documents() - 1);
    receipt.first_element = static_cast<NodeId>(delta->num_elements() -
                                                mutation.elements.size());
    receipt.num_elements = static_cast<uint32_t>(mutation.elements.size());
  }
  return receipt;
}

Result<RebuildReceipt> EnginePool::RebuildNow(RebuildMode mode) {
  // One rebuild at a time; kFull spends its build outside mutation_mu_,
  // so writers keep landing ops while it runs.
  std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
  RebuildReceipt receipt;
  receipt.mode = mode;

  if (mode == RebuildMode::kAbsorb) {
    Stopwatch pause;
    std::lock_guard<std::mutex> lock(mutation_mu_);
    if (!maintenance_) {
      return Status::FailedPrecondition("RebuildNow without EnableMutations");
    }
    std::shared_ptr<const ServingState> state = State();
    receipt.generation = state->delta->generation();
    receipt.absorbed_ops = state->delta->num_ops();
    if (state->delta->empty()) {
      receipt.snapshot_version = state->snapshot->version();
      return receipt;  // nothing buffered; no swap
    }
    // Freeze copies the maintenance collection + cover; the delta ops
    // are all <= generation, so the truncated delta is empty — but the
    // two are published as ONE state (the swap-truncate ordering rule).
    std::shared_ptr<const BackendSnapshot> snapshot =
        BackendSnapshot::Freeze(*maintenance_->index);
    std::shared_ptr<const DeltaState> delta = state->delta->RebaseAfter(
        receipt.generation, snapshot->collection().NumElements(),
        snapshot->collection().NumDocuments());
    Publish(snapshot, std::move(delta), /*count_swap=*/true);
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    receipt.snapshot_version = snapshot->version();
    receipt.writer_pause_us = static_cast<uint64_t>(pause.ElapsedMicros());
    last_rebuild_pause_us_.store(receipt.writer_pause_us,
                                 std::memory_order_relaxed);
    return receipt;
  }

  // kFull: copy under the lock, build outside it, catch up + publish
  // under the lock again.
  uint64_t built_through = 0;
  std::unique_ptr<collection::Collection> copy;
  uint64_t pause_us = 0;
  {
    Stopwatch pause;
    std::lock_guard<std::mutex> lock(mutation_mu_);
    if (!maintenance_) {
      return Status::FailedPrecondition("RebuildNow without EnableMutations");
    }
    built_through = State()->delta->generation();
    copy = std::make_unique<collection::Collection>(*maintenance_->collection);
    pause_us += static_cast<uint64_t>(pause.ElapsedMicros());
  }
  IndexBuildOptions build_options;
  build_options.with_distance = maintenance_with_distance_;
  Result<HopiIndex> built = BuildIndex(copy.get(), build_options);
  if (!built.ok()) return built.status();
  auto fresh = std::make_unique<MaintenanceState>();
  fresh->collection = std::move(copy);
  fresh->index.emplace(std::move(built).value());
  {
    Stopwatch pause;
    std::lock_guard<std::mutex> lock(mutation_mu_);
    if (!maintenance_) {
      return Status::FailedPrecondition(
          "mutations were disabled while the rebuild ran (Swap?)");
    }
    std::shared_ptr<const ServingState> state = State();
    // Ops that landed during the background build: replay them onto the
    // fresh index (Sec 6) so it is current through `generation`.
    for (const Mutation& op : state->delta->OpsAfter(built_through)) {
      Status replayed = ApplyToMaintenance(fresh.get(), op);
      if (!replayed.ok()) {
        return Status::Internal("rebuild catch-up replay failed: " +
                                replayed.message());
      }
    }
    uint64_t generation = state->delta->generation();
    std::shared_ptr<const BackendSnapshot> snapshot =
        BackendSnapshot::Freeze(*fresh->index);
    std::shared_ptr<const DeltaState> delta = state->delta->RebaseAfter(
        generation, snapshot->collection().NumElements(),
        snapshot->collection().NumDocuments());
    Publish(snapshot, std::move(delta), /*count_swap=*/true);
    maintenance_ = std::move(fresh);
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    receipt.generation = generation;
    receipt.absorbed_ops = state->delta->num_ops();
    receipt.snapshot_version = snapshot->version();
    pause_us += static_cast<uint64_t>(pause.ElapsedMicros());
  }
  receipt.writer_pause_us = pause_us;
  last_rebuild_pause_us_.store(pause_us, std::memory_order_relaxed);
  return receipt;
}

const EnginePool::ServingState& EnginePool::BindCurrentState(WorkerState* ws) {
  std::shared_ptr<const ServingState> current = State();
  if (ws->state != current) {
    QueryEngineOptions engine_options;
    engine_options.label_cache_bytes = options_.label_cache_bytes;
    engine_options.similarity = options_.similarity;
    engine_options.shared_tags = current->snapshot->tags();
    std::unique_ptr<ReachabilityBackend> backend =
        current->snapshot->MakeBackend();
    if (!current->delta->empty()) {
      // Non-empty delta: serve through the overlay. The engine still
      // sees the BASE collection — tag/path features cover base
      // elements until the next rebuild folds the delta in; pure
      // reachability sees base ∪ delta.
      DeltaOverlayOptions overlay_options;
      overlay_options.hop_budget = options_.overlay_hop_budget;
      overlay_options.parallel_frontier_threshold =
          options_.overlay_parallel_threshold;
      overlay_options.pool = overlay_pool_.get();
      backend = std::make_unique<DeltaOverlayBackend>(
          std::move(backend), &current->snapshot->collection(),
          current->delta, overlay_options, &overlay_counters_);
    }
    // Pin the rebind so a concurrent WorkerCacheStats() never reads a
    // half-destroyed engine. The lock is uncontended on the hot path
    // (taken here only when the serving state actually changed).
    std::lock_guard<std::mutex> lock(ws->rebind_mu);
    ws->engine.emplace(current->snapshot->collection(), std::move(backend),
                       std::move(engine_options));
    ws->state = std::move(current);
    ws->rebinds.fetch_add(1, std::memory_order_relaxed);
  }
  return *ws->state;
}

void EnginePool::WorkerLoop(size_t lane) {
  WorkerState& ws = *workers_[lane];
  while (std::optional<WorkItem> item = queue_.Pop(lane)) {
    ws.inflight.store(1, std::memory_order_relaxed);
    // Exception barrier: a throw (rebind allocation, backend fault,
    // bad_alloc on a huge batch) fails the one request through its
    // promise instead of escaping the thread body and terminating the
    // process — the serving-worker analogue of util::ThreadPool's
    // error channel.
    try {
      const ServingState& state = BindCurrentState(&ws);
      uint64_t version = state.snapshot->version();
      uint64_t generation = state.delta->generation();
      if (item->batch) {
        BatchResponse response = ws.engine->Batch(item->batch->request);
        const BatchStats& stats = response.stats;
        ws.probes.fetch_add(stats.probes, std::memory_order_relaxed);
        ws.unique_probes.fetch_add(stats.unique_probes,
                                   std::memory_order_relaxed);
        ws.cache_hits.fetch_add(stats.cache_hits, std::memory_order_relaxed);
        ws.cache_misses.fetch_add(stats.cache_misses,
                                  std::memory_order_relaxed);
        ws.labels_borrowed.fetch_add(stats.labels_borrowed,
                                     std::memory_order_relaxed);
        ws.blocks_decoded.fetch_add(stats.blocks_decoded,
                                    std::memory_order_relaxed);
        ws.backend_probes.fetch_add(stats.backend_probes,
                                    std::memory_order_relaxed);
        ws.batches.fetch_add(1, std::memory_order_relaxed);
        PoolBatchResponse out{std::move(response), version, generation, lane};
        if (item->batch->on_done) {
          // Detach first so the catch-all below cannot double-deliver
          // if the callback itself throws.
          auto on_done = std::move(item->batch->on_done);
          item->batch->on_done = nullptr;
          on_done(std::move(out));
        } else {
          item->batch->promise.set_value(std::move(out));
        }
      } else {
        Result<PathQueryResponse> result =
            ws.engine->Query(item->path->request);
        ws.path_queries.fetch_add(1, std::memory_order_relaxed);
        PoolPathResponse out{std::move(result), version, generation, lane};
        if (item->path->on_done) {
          auto on_done = std::move(item->path->on_done);
          item->path->on_done = nullptr;
          on_done(std::move(out));
        } else {
          item->path->promise.set_value(std::move(out));
        }
      }
    } catch (...) {
      // Callback jobs get a typed error Result; future jobs get the
      // exception itself (the pre-callback contract).
      Status error = Status::Internal("serving worker failed: " +
                                      DescribeCurrentException());
      try {
        if (item->batch) {
          if (item->batch->on_done) {
            try {
              item->batch->on_done(error);
            } catch (...) {
              // Callbacks must not throw; swallowing here keeps the
              // worker alive (contract documented on SubmitBatch).
            }
          } else {
            item->batch->promise.set_exception(std::current_exception());
          }
        } else {
          if (item->path->on_done) {
            try {
              item->path->on_done(error);
            } catch (...) {
            }
          } else {
            item->path->promise.set_exception(std::current_exception());
          }
        }
      } catch (const std::future_error&) {
        // The promise was already satisfied (set_value threw after
        // delivering): the client has its answer; nothing to report.
      }
    }
    ws.inflight.store(0, std::memory_order_relaxed);
  }
  // Drop the worker's snapshot reference promptly on exit so Shutdown
  // is also a release of the served index.
  std::lock_guard<std::mutex> lock(ws.rebind_mu);
  ws.engine.reset();
  ws.state.reset();
}

PoolStats EnginePool::Stats() const {
  PoolStats stats;
  for (const auto& ws : workers_) {
    stats.batches += ws->batches.load(std::memory_order_relaxed);
    stats.path_queries += ws->path_queries.load(std::memory_order_relaxed);
    stats.probes += ws->probes.load(std::memory_order_relaxed);
    stats.unique_probes += ws->unique_probes.load(std::memory_order_relaxed);
    stats.cache_hits += ws->cache_hits.load(std::memory_order_relaxed);
    stats.cache_misses += ws->cache_misses.load(std::memory_order_relaxed);
    stats.labels_borrowed +=
        ws->labels_borrowed.load(std::memory_order_relaxed);
    stats.blocks_decoded +=
        ws->blocks_decoded.load(std::memory_order_relaxed);
    stats.backend_probes += ws->backend_probes.load(std::memory_order_relaxed);
    stats.rebinds += ws->rebinds.load(std::memory_order_relaxed);
  }
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.sheds = sheds_.load(std::memory_order_relaxed);
  stats.mutations = mutations_.load(std::memory_order_relaxed);
  stats.mutation_failures =
      mutation_failures_.load(std::memory_order_relaxed);
  stats.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  stats.last_rebuild_pause_us =
      last_rebuild_pause_us_.load(std::memory_order_relaxed);
  stats.overlay_probes =
      overlay_counters_.probes.load(std::memory_order_relaxed);
  stats.overlay_base_hits =
      overlay_counters_.base_hits.load(std::memory_order_relaxed);
  stats.overlay_bfs_fallbacks =
      overlay_counters_.bfs_fallbacks.load(std::memory_order_relaxed);
  stats.overlay_budget_exhaustions =
      overlay_counters_.budget_exhaustions.load(std::memory_order_relaxed);
  stats.overlay_parallel_expansions =
      overlay_counters_.parallel_expansions.load(std::memory_order_relaxed);
  std::shared_ptr<const ServingState> state = State();
  stats.snapshot_version = state->snapshot->version();
  stats.delta_ops = state->delta->num_ops();
  stats.delta_generation = state->delta->generation();
  stats.degradation = MaintenanceDegradation();
  stats.queued = queue_.TotalQueued();
  for (const auto& ws : workers_) {
    stats.executing += ws->inflight.load(std::memory_order_relaxed);
  }
  stats.shedding = admission_.shedding();
  return stats;
}

std::vector<LabelCache::Stats> EnginePool::WorkerCacheStats() const {
  std::vector<LabelCache::Stats> per_worker;
  per_worker.reserve(workers_.size());
  for (const auto& ws : workers_) {
    std::lock_guard<std::mutex> lock(ws->rebind_mu);
    per_worker.push_back(ws->engine ? ws->engine->label_cache().StatsSnapshot()
                                    : LabelCache::Stats{});
  }
  return per_worker;
}

// ---------------------------------------------------------------------------
// RebuildDaemon
// ---------------------------------------------------------------------------

RebuildDaemon::RebuildDaemon(EnginePool* pool)
    : RebuildDaemon(pool, Options()) {}

RebuildDaemon::RebuildDaemon(EnginePool* pool, Options options)
    : pool_(pool), options_(options) {
  assert(pool_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

RebuildDaemon::~RebuildDaemon() { Stop(); }

void RebuildDaemon::Poke() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poked_ = true;
  }
  cv_.notify_all();
}

void RebuildDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

RebuildDaemon::Stats RebuildDaemon::stats() const {
  Stats s;
  s.polls = polls_.load(std::memory_order_relaxed);
  s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  s.full_rebuilds = full_rebuilds_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.last_pause_us = last_pause_us_.load(std::memory_order_relaxed);
  return s;
}

void RebuildDaemon::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, options_.poll_interval,
                 [&] { return stop_ || poked_; });
    if (stop_) return;
    poked_ = false;
    lock.unlock();
    polls_.fetch_add(1, std::memory_order_relaxed);
    // Policy: degradation is the stronger signal (only kFull resets
    // it); plain delta growth is absorbed cheaply.
    std::optional<RebuildMode> mode;
    if (options_.degradation_threshold > 0.0 &&
        pool_->MaintenanceDegradation() >= options_.degradation_threshold) {
      mode = RebuildMode::kFull;
    } else if (options_.max_delta_ops > 0 &&
               pool_->delta()->num_ops() >= options_.max_delta_ops) {
      mode = RebuildMode::kAbsorb;
    }
    if (mode.has_value()) {
      Result<RebuildReceipt> receipt = pool_->RebuildNow(*mode);
      if (receipt.ok()) {
        rebuilds_.fetch_add(1, std::memory_order_relaxed);
        if (*mode == RebuildMode::kFull) {
          full_rebuilds_.fetch_add(1, std::memory_order_relaxed);
        }
        last_pause_us_.store(receipt->writer_pause_us,
                             std::memory_order_relaxed);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    lock.lock();
  }
}

}  // namespace hopi::engine
