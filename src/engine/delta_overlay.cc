#include "engine/delta_overlay.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hopi::engine {

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

Mutation Mutation::InsertLink(NodeId u, NodeId v) {
  Mutation m;
  m.kind = Kind::kInsertLink;
  m.source = u;
  m.target = v;
  return m;
}

Mutation Mutation::DeleteLink(NodeId u, NodeId v) {
  Mutation m;
  m.kind = Kind::kDeleteLink;
  m.source = u;
  m.target = v;
  return m;
}

Mutation Mutation::InsertDocument(std::string name,
                                  std::vector<NewElementSpec> elements) {
  Mutation m;
  m.kind = Kind::kInsertDocument;
  m.doc_name = std::move(name);
  m.elements = std::move(elements);
  return m;
}

Mutation Mutation::DeleteDocument(collection::DocId doc) {
  Mutation m;
  m.kind = Kind::kDeleteDocument;
  m.doc = doc;
  return m;
}

Status ApplyMutationToCollection(const Mutation& m,
                                 collection::Collection* collection) {
  switch (m.kind) {
    case Mutation::Kind::kInsertLink:
      if (!collection->AddLink(m.source, m.target)) {
        return Status::InvalidArgument("link already present");
      }
      return Status::OK();
    case Mutation::Kind::kDeleteLink:
      return collection->RemoveLink(m.source, m.target);
    case Mutation::Kind::kInsertDocument: {
      collection::DocId d = collection->AddDocument(m.doc_name);
      std::vector<NodeId> ids;
      ids.reserve(m.elements.size());
      for (const NewElementSpec& spec : m.elements) {
        NodeId parent =
            spec.parent.has_value() ? ids[*spec.parent] : kInvalidNode;
        ids.push_back(collection->AddElement(d, spec.tag, parent));
      }
      return Status::OK();
    }
    case Mutation::Kind::kDeleteDocument:
      return collection->RemoveDocument(m.doc);
  }
  return Status::Internal("unknown mutation kind");
}

// ---------------------------------------------------------------------------
// DeltaState
// ---------------------------------------------------------------------------

std::shared_ptr<const DeltaState> DeltaState::MakeEmpty(size_t base_elements,
                                                        size_t base_documents,
                                                        uint64_t generation) {
  auto s = std::shared_ptr<DeltaState>(new DeltaState());
  s->base_elements_ = base_elements;
  s->base_documents_ = base_documents;
  s->generation_ = generation;
  return s;
}

void DeltaState::AddDeltaEdge(NodeId u, NodeId v, bool is_link) {
  delta_out_[u].push_back(v);
  delta_in_[v].push_back(u);
  delta_edges_.insert(EdgeKey(u, v));
  if (is_link) delta_links_.insert(EdgeKey(u, v));
}

void DeltaState::RemoveDeltaLink(NodeId u, NodeId v) {
  uint64_t key = EdgeKey(u, v);
  delta_links_.erase(key);
  delta_edges_.erase(key);
  auto drop = [](std::unordered_map<NodeId, std::vector<NodeId>>& adj,
                 NodeId from, NodeId to) {
    auto it = adj.find(from);
    if (it == adj.end()) return;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), to), vec.end());
    if (vec.empty()) adj.erase(it);
  };
  drop(delta_out_, u, v);
  drop(delta_in_, v, u);
}

void DeltaState::ApplyDerived(const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kInsertLink:
      AddDeltaEdge(m.source, m.target, /*is_link=*/true);
      break;
    case Mutation::Kind::kDeleteLink:
      if (delta_links_.count(EdgeKey(m.source, m.target)) != 0) {
        // Deleting a link the delta itself inserted: take it back out of
        // the delta adjacency. No base structure is lost, so the base
        // fast path stays valid.
        RemoveDeltaLink(m.source, m.target);
      } else {
        // Deleting a base link: mask it. deleted_edges_ therefore only
        // ever holds base edges (the has_base_removals invariant).
        deleted_edges_.insert(EdgeKey(m.source, m.target));
      }
      break;
    case Mutation::Kind::kInsertDocument: {
      collection::DocId d =
          static_cast<collection::DocId>(base_documents_ + new_docs_);
      ++new_docs_;
      NodeId first = static_cast<NodeId>(num_elements());
      for (size_t i = 0; i < m.elements.size(); ++i) {
        new_element_docs_.push_back(d);
        if (m.elements[i].parent.has_value()) {
          // Tree edge of a delta-created document — an edge but not a
          // link, so delete_link must not accept it.
          AddDeltaEdge(first + *m.elements[i].parent,
                       first + static_cast<NodeId>(i), /*is_link=*/false);
        }
      }
      break;
    }
    case Mutation::Kind::kDeleteDocument:
      dead_docs_.insert(m.doc);
      if (m.doc < base_documents_) ++dead_base_docs_;
      // Delta edges incident to the dead document's elements stay in the
      // adjacency; probes skip them via the dead-endpoint check, which
      // matches Collection::RemoveDocument isolating the elements.
      break;
  }
}

Result<std::shared_ptr<const DeltaState>> DeltaState::Apply(
    const Mutation& m, const collection::Collection& base) const {
  // Liveness of a document as of base ∪ delta.
  auto doc_dead = [&](collection::DocId d) {
    if (IsDeadDoc(d)) return true;
    return d < base_documents_ && !base.IsLive(d);
  };
  // Liveness of an element as of base ∪ delta.
  auto node_dead = [&](NodeId e) {
    collection::DocId d =
        e < base_elements_ ? base.DocOf(e) : DocOfNew(e);
    return doc_dead(d);
  };
  // Edge present in base ∪ delta (any kind — link or tree edge).
  auto edge_present = [&](NodeId u, NodeId v) {
    if (delta_edges_.count(EdgeKey(u, v)) != 0) return true;
    return u < base_elements_ && v < base_elements_ &&
           base.ElementGraph().HasEdge(u, v) && !IsEdgeDeleted(u, v);
  };
  // Tree edge u -> v (in base or in a delta-created document)?
  auto is_tree_edge = [&](NodeId u, NodeId v) {
    if (v < base_elements_) return base.ParentOf(v) == u;
    // Delta documents: tree edges are the non-link delta edges.
    return delta_edges_.count(EdgeKey(u, v)) != 0 &&
           delta_links_.count(EdgeKey(u, v)) == 0;
  };

  switch (m.kind) {
    case Mutation::Kind::kInsertLink: {
      if (m.source >= num_elements() || m.target >= num_elements()) {
        return Status::InvalidArgument("link endpoint out of range");
      }
      if (node_dead(m.source) || node_dead(m.target)) {
        return Status::InvalidArgument(
            "link endpoint in a deleted document");
      }
      if (edge_present(m.source, m.target)) {
        return Status::InvalidArgument("link already present");
      }
      break;
    }
    case Mutation::Kind::kDeleteLink: {
      if (m.source >= num_elements() || m.target >= num_elements() ||
          node_dead(m.source) || node_dead(m.target) ||
          !edge_present(m.source, m.target)) {
        return Status::NotFound("link not present");
      }
      if (is_tree_edge(m.source, m.target)) {
        // Tree edges are structural, not links; only document deletion
        // removes them (Collection::RemoveLink agrees).
        return Status::NotFound("link not present");
      }
      break;
    }
    case Mutation::Kind::kInsertDocument: {
      if (m.elements.empty()) {
        return Status::InvalidArgument("document needs at least one element");
      }
      for (size_t i = 0; i < m.elements.size(); ++i) {
        const NewElementSpec& spec = m.elements[i];
        if (i == 0) {
          if (spec.parent.has_value()) {
            return Status::InvalidArgument(
                "first element must be the document root");
          }
        } else {
          if (!spec.parent.has_value()) {
            return Status::InvalidArgument(
                "non-root element needs a parent (single-root documents)");
          }
          if (*spec.parent >= i) {
            return Status::InvalidArgument(
                "element parent must precede it in the element list");
          }
        }
      }
      break;
    }
    case Mutation::Kind::kDeleteDocument: {
      if (m.doc >= num_documents()) {
        return Status::NotFound("no such document");
      }
      if (doc_dead(m.doc)) {
        return Status::InvalidArgument("document not live");
      }
      break;
    }
  }

  auto next = std::shared_ptr<DeltaState>(new DeltaState(*this));
  next->ApplyDerived(m);
  next->ops_.push_back(m);
  next->generation_ = generation_ + 1;
  return std::shared_ptr<const DeltaState>(std::move(next));
}

std::shared_ptr<const DeltaState> DeltaState::RebaseAfter(
    uint64_t through, size_t base_elements, size_t base_documents) const {
  auto s = std::shared_ptr<DeltaState>(new DeltaState());
  s->base_elements_ = base_elements;
  s->base_documents_ = base_documents;
  s->generation_ = generation_;
  std::span<const Mutation> kept = OpsAfter(through);
  // Pre-set ops_ so GenerationOfOp stays consistent, then rebuild the
  // derived structures by replaying the kept suffix. An op kept across
  // the rebase keeps its meaning: a delete_link whose target was
  // absorbed into the new base lands in deleted_edges_ this time round
  // (its insert is gone from delta_links_), which is exactly the new
  // base masking it needs.
  s->ops_.assign(kept.begin(), kept.end());
  for (const Mutation& m : s->ops_) s->ApplyDerived(m);
  return s;
}

Status DeltaState::Replay(collection::Collection* collection) const {
  for (const Mutation& m : ops_) {
    Status st = ApplyMutationToCollection(m, collection);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

std::span<const Mutation> DeltaState::OpsAfter(uint64_t g) const {
  if (g >= generation_) return {};
  uint64_t want = generation_ - g;  // number of trailing ops to keep
  size_t keep = want >= ops_.size() ? ops_.size() : static_cast<size_t>(want);
  return std::span<const Mutation>(ops_.data() + (ops_.size() - keep), keep);
}

// ---------------------------------------------------------------------------
// DeltaOverlayBackend
// ---------------------------------------------------------------------------

DeltaOverlayBackend::DeltaOverlayBackend(
    std::unique_ptr<ReachabilityBackend> base,
    const collection::Collection* base_collection,
    std::shared_ptr<const DeltaState> delta, DeltaOverlayOptions options,
    OverlayCounters* counters)
    : base_(std::move(base)),
      base_collection_(base_collection),
      delta_(std::move(delta)),
      options_(options),
      counters_(counters) {
  assert(base_ != nullptr);
  assert(base_collection_ != nullptr);
  assert(delta_ != nullptr);
  assert(delta_->base_elements() == base_collection_->NumElements());
  size_t n = delta_->num_elements();
  fwd_mark_.assign(n, 0);
  bwd_mark_.assign(n, 0);
  size_t workers = options_.pool != nullptr ? options_.pool->NumWorkers() : 1;
  worker_candidates_.resize(workers);
}

bool DeltaOverlayBackend::IsDeadNode(NodeId e) const {
  collection::DocId d = e < delta_->base_elements()
                            ? base_collection_->DocOf(e)
                            : delta_->DocOfNew(e);
  return delta_->IsDeadDoc(d);
}

template <typename Fn>
void DeltaOverlayBackend::ForEachNeighbor(NodeId x, bool forward,
                                          Fn&& fn) const {
  const bool check_deleted = delta_->num_deleted_edges() != 0;
  const bool check_dead = delta_->has_dead_docs();
  if (x < delta_->base_elements()) {
    const auto& neighbors = forward
                                ? base_collection_->ElementGraph().OutNeighbors(x)
                                : base_collection_->ElementGraph().InNeighbors(x);
    for (NodeId y : neighbors) {
      if (check_deleted &&
          (forward ? delta_->IsEdgeDeleted(x, y)
                   : delta_->IsEdgeDeleted(y, x))) {
        continue;
      }
      if (check_dead && IsDeadNode(y)) continue;
      fn(y);
    }
  }
  const std::vector<NodeId>* extra =
      forward ? delta_->DeltaOut(x) : delta_->DeltaIn(x);
  if (extra != nullptr) {
    for (NodeId y : *extra) {
      if (check_dead && IsDeadNode(y)) continue;
      fn(y);
    }
  }
}

void DeltaOverlayBackend::PrepareEpoch() const {
  if (++epoch_ == 0) {
    // uint32 wrap: old stamps could alias the new epoch, so reset.
    std::fill(fwd_mark_.begin(), fwd_mark_.end(), 0);
    std::fill(bwd_mark_.begin(), bwd_mark_.end(), 0);
    epoch_ = 1;
  }
}

bool DeltaOverlayBackend::ExpandFrontier(
    const std::vector<NodeId>& frontier, bool forward,
    std::vector<NodeId>* next, std::vector<uint32_t>* mark,
    const std::vector<uint32_t>* other_mark) const {
  next->clear();
  bool found = false;
  auto visit = [&](NodeId y) {
    if ((*mark)[y] == epoch_) return;
    (*mark)[y] = epoch_;
    if (other_mark != nullptr && (*other_mark)[y] == epoch_) found = true;
    next->push_back(y);
  };
  ThreadPool* pool = options_.pool;
  if (pool != nullptr && frontier.size() >= options_.parallel_frontier_threshold) {
    // Two-phase parallel expansion: workers scan adjacency read-only
    // into disjoint per-worker buffers, then the calling thread merges —
    // the visited stamps keep a single writer. If the pool is busy (a
    // concurrent probe or a background build owns it), ParallelFor's
    // re-entrancy guard runs this inline, which is just the serial path
    // with extra buffering.
    if (counters_ != nullptr) {
      counters_->parallel_expansions.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& buf : worker_candidates_) buf.clear();
    Status st = pool->ParallelFor(
        0, frontier.size(), [&](size_t i, size_t worker) {
          ForEachNeighbor(frontier[i], forward, [&](NodeId y) {
            worker_candidates_[worker].push_back(y);
          });
          return Status::OK();
        });
    assert(st.ok());
    (void)st;
    for (const auto& buf : worker_candidates_) {
      for (NodeId y : buf) visit(y);
    }
  } else {
    for (NodeId x : frontier) {
      ForEachNeighbor(x, forward, visit);
    }
  }
  return found;
}

DeltaOverlayBackend::SearchResult DeltaOverlayBackend::BidirectionalSearch(
    NodeId u, NodeId v, size_t budget) const {
  PrepareEpoch();
  fwd_mark_[u] = epoch_;
  bwd_mark_[v] = epoch_;
  fwd_frontier_.assign(1, u);
  bwd_frontier_.assign(1, v);
  size_t fwd_hops = 0;
  size_t bwd_hops = 0;
  for (;;) {
    // An emptied frontier is definitive: that side's reachable set is
    // fully stamped and never met the other side.
    if (fwd_frontier_.empty() || bwd_frontier_.empty()) {
      return SearchResult::kExhausted;
    }
    bool fwd_can = fwd_hops < budget;
    bool bwd_can = bwd_hops < budget;
    if (!fwd_can && !bwd_can) return SearchResult::kBudget;
    // Galois-style alternation: always grow the smaller live frontier.
    bool forward =
        fwd_can &&
        (!bwd_can || fwd_frontier_.size() <= bwd_frontier_.size());
    bool met;
    if (forward) {
      met = ExpandFrontier(fwd_frontier_, /*forward=*/true, &scratch_next_,
                           &fwd_mark_, &bwd_mark_);
      fwd_frontier_.swap(scratch_next_);
      ++fwd_hops;
    } else {
      met = ExpandFrontier(bwd_frontier_, /*forward=*/false, &scratch_next_,
                           &bwd_mark_, &fwd_mark_);
      bwd_frontier_.swap(scratch_next_);
      ++bwd_hops;
    }
    if (met) return SearchResult::kFound;
  }
}

DeltaOverlayBackend::Outcome DeltaOverlayBackend::Probe(NodeId u,
                                                        NodeId v) const {
  if (u == v) return Outcome::kReflexive;
  size_t n = delta_->num_elements();
  if (u >= n || v >= n) return Outcome::kDeadEndpoint;
  if (counters_ != nullptr) {
    counters_->probes.fetch_add(1, std::memory_order_relaxed);
  }
  size_t base_n = delta_->base_elements();
  // Base hit: with no base removals, edge insertion is monotone — a
  // base "reachable" can only stay reachable through the delta.
  if (!delta_->has_base_removals() && u < base_n && v < base_n &&
      base_->IsReachable(u, v)) {
    if (counters_ != nullptr) {
      counters_->base_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return Outcome::kBaseHit;
  }
  if (delta_->has_dead_docs() && (IsDeadNode(u) || IsDeadNode(v))) {
    return Outcome::kDeadEndpoint;
  }
  if (counters_ != nullptr) {
    counters_->bfs_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  switch (BidirectionalSearch(u, v, options_.hop_budget)) {
    case SearchResult::kFound:
      if (counters_ != nullptr) {
        counters_->bfs_reachable.fetch_add(1, std::memory_order_relaxed);
      }
      return Outcome::kBfsReachable;
    case SearchResult::kExhausted:
      if (counters_ != nullptr) {
        counters_->bfs_unreachable.fetch_add(1, std::memory_order_relaxed);
      }
      return Outcome::kBfsUnreachable;
    case SearchResult::kBudget:
      break;
  }
  // Typed unknown: the hop budget ran out on both sides. Recheck with no
  // budget so the served answer stays exact (kBudget is impossible at
  // SIZE_MAX — the search either meets or exhausts a frontier).
  if (counters_ != nullptr) {
    counters_->budget_exhaustions.fetch_add(1, std::memory_order_relaxed);
  }
  SearchResult r = BidirectionalSearch(u, v, SIZE_MAX);
  assert(r != SearchResult::kBudget);
  return r == SearchResult::kFound ? Outcome::kRecheckReachable
                                   : Outcome::kRecheckUnreachable;
}

std::optional<uint32_t> DeltaOverlayBackend::Distance(NodeId u,
                                                      NodeId v) const {
  if (u == v) return 0;
  if (IsReachable(u, v)) return 0;
  return std::nullopt;
}

std::vector<NodeId> DeltaOverlayBackend::Collect(NodeId start,
                                                 bool forward) const {
  std::vector<NodeId> out;
  size_t n = delta_->num_elements();
  if (start >= n) return out;
  if (delta_->has_dead_docs() && IsDeadNode(start)) return out;
  PrepareEpoch();
  std::vector<uint32_t>& mark = forward ? fwd_mark_ : bwd_mark_;
  mark[start] = epoch_;
  std::vector<NodeId>& frontier = forward ? fwd_frontier_ : bwd_frontier_;
  frontier.assign(1, start);
  bool self_cycle = false;
  while (!frontier.empty()) {
    scratch_next_.clear();
    for (NodeId x : frontier) {
      ForEachNeighbor(x, forward, [&](NodeId y) {
        if (y == start) self_cycle = true;
        if (mark[y] == epoch_) return;
        mark[y] = epoch_;
        out.push_back(y);
        scratch_next_.push_back(y);
      });
    }
    frontier.swap(scratch_next_);
  }
  // The closure baseline includes a node in its own descendant set only
  // when a cycle re-reaches it; mirror that.
  if (self_cycle) out.push_back(start);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> DeltaOverlayBackend::Descendants(NodeId u) const {
  return Collect(u, /*forward=*/true);
}

std::vector<NodeId> DeltaOverlayBackend::Ancestors(NodeId u) const {
  return Collect(u, /*forward=*/false);
}

}  // namespace hopi::engine
