// Shard plan + router: the paper's partitioned cover, cut at shard
// granularity for scatter-gather serving.
//
// The ROADMAP names the document partitioning (Sec 3.3) as the natural
// shard key. A ShardPlan groups the partitions of one PartitionCollection
// run into N shard units and builds, per shard, a self-contained 2-hop
// cover over that shard's documents (per-partition covers joined with
// JoinCoversRecursive restricted to intra-shard cross links — the same
// pipeline hopi/build.cc runs, stopped one level early). Reachability
// ACROSS shards is carried by the shard-level skeleton: the PSG over the
// cross-SHARD links (partition/psg.h with "partition" = shard) and its
// H-bar cover (hopi/join.h ComputeSkeletonCover), kept in the router as
// route tables — (source, target, dist) triples meaning "leaving the
// source's shard at `source` reaches `target` in the target's shard after
// `dist` edges".
//
// Probe composition (exactly how hopi/join.cc composes partition covers):
//
//   same shard   dist(u,v) = shard-local cover answer. The plan
//                pre-applies every SAME-shard skeleton route to the
//                shard's cover (the H-bar/H-hat merge of Sec 4.1,
//                restricted to routes that start and end in the shard),
//                so paths that leave the shard and come back are already
//                in the labels and direct routing stays exact.
//   cross shard  dist(u,v) = min over routes (s,t) of
//                  dist_shard(u)(u,s) + dist_psg(s,t) + dist_shard(v)(t,v)
//                — min-plus over the three legs. Decomposing any u->v
//                path at its first and last cross-shard link crossing
//                shows the min is exact: the first/last legs never leave
//                their shard, and the middle is a PSG walk.
//
// The router itself is deliberately dumb and serializable: part_of /
// shard_of tables and per-shard-pair route lists, no engine pointers —
// the piece that would move to a stateless routing tier when the
// ShardClient boundary (sharded_engine.h) is lifted onto sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "collection/collection.h"
#include "hopi/index.h"
#include "partition/partitioner.h"
#include "util/result.h"

namespace hopi::engine {

/// Shard id of dead documents / dead elements (mirrors
/// partition::kUnassigned for partitions).
inline constexpr uint32_t kUnassignedShard = UINT32_MAX;

/// One skeleton route: leaving shard_of(source) at `source` reaches
/// `target` (in shard_of(target)) after `dist` element-graph edges.
struct ShardRoute {
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  uint32_t dist = 0;
};

struct ShardPlanOptions {
  /// Shard units to build. Clamped to the number of document partitions
  /// (a single-partition collection always yields one shard).
  size_t num_shards = 2;
  /// Build distance-aware shard covers and skeleton routes.
  bool with_distance = false;
  /// Document partitioning knobs (the shard key comes from this run).
  partition::PartitionOptions partition;
  /// Thread budget for the per-partition cover builds.
  size_t num_threads = 1;
  /// Sec 4.1 recursive PSG split cap for the shard-level skeleton
  /// (0 = traverse the skeleton PSG whole).
  uint64_t psg_partition_cap = 0;
};

struct ShardPlanStats {
  uint64_t num_partitions = 0;      ///< Document partitions under the shards.
  uint64_t cross_shard_links = 0;   ///< Links crossing a shard boundary.
  uint64_t skeleton_entries = 0;    ///< H-bar rows' total (s, t) pairs.
  uint64_t cross_shard_routes = 0;  ///< The subset routed between shards.
  uint64_t same_shard_routes = 0;   ///< The subset folded into shard covers.
  uint64_t augmented_labels = 0;    ///< Labels added by that folding.
  uint64_t psg_nodes = 0;
  uint64_t psg_edges = 0;
};

/// Everything the sharded serving tier needs, built once per collection:
/// membership tables, one immutable per-shard index, and the skeleton
/// route tables. Indexes reference the collection the plan was built
/// from; it must outlive the plan.
struct ShardPlan {
  size_t num_shards = 0;
  bool with_distance = false;

  /// Document partitioning the shards were cut from.
  partition::Partitioning partitioning;
  /// doc -> shard (kUnassignedShard for dead docs).
  std::vector<uint32_t> shard_of_doc;
  /// element -> shard (kUnassignedShard for elements of dead docs).
  std::vector<uint32_t> shard_of_element;
  /// Documents per shard.
  std::vector<std::vector<collection::DocId>> docs_of_shard;

  /// Per-shard 2-hop indexes in GLOBAL element ids, same-shard skeleton
  /// routes already folded in. Shared so BackendSnapshot::OfIndex can
  /// co-own them.
  std::vector<std::shared_ptr<const HopiIndex>> indexes;

  /// Cross-shard route tables: routes[a * num_shards + b] holds every
  /// skeleton route from shard a to shard b (a != b), sorted by
  /// (source, target).
  std::vector<std::vector<ShardRoute>> routes;

  ShardPlanStats stats;

  uint32_t ShardOfElement(NodeId u) const {
    return u < shard_of_element.size() ? shard_of_element[u]
                                       : kUnassignedShard;
  }
  const std::vector<ShardRoute>& RoutesBetween(uint32_t from,
                                               uint32_t to) const {
    return routes[from * num_shards + to];
  }
};

/// Builds a ShardPlan over the collection's live documents. `collection`
/// must outlive the plan (the per-shard indexes point into it).
/// InvalidArgument when num_shards == 0.
Result<ShardPlan> BuildShardPlan(collection::Collection* collection,
                                 const ShardPlanOptions& options);

/// The scatter half of one cross-shard probe, precomputed per ordered
/// shard pair: which elements the source shard must answer (u -> source)
/// and which the target shard must answer (target -> v).
struct ShardProbeSet {
  std::vector<NodeId> sources;  ///< Sorted unique route sources.
  std::vector<NodeId> targets;  ///< Sorted unique route targets.
};

/// Routing decisions over a ShardPlan. Owns nothing but derived tables;
/// safe to share across threads once constructed.
class ShardRouter {
 public:
  /// `plan` must outlive the router.
  explicit ShardRouter(const ShardPlan* plan);

  uint32_t ShardOf(NodeId u) const { return plan_->ShardOfElement(u); }
  size_t num_shards() const { return plan_->num_shards; }

  /// Scatter set for probes from shard `from` to shard `to` (from != to).
  /// Empty sets mean the pair is unreachable without any probing.
  const ShardProbeSet& ProbesBetween(uint32_t from, uint32_t to) const {
    return probe_sets_[from * plan_->num_shards + to];
  }
  const std::vector<ShardRoute>& RoutesBetween(uint32_t from,
                                               uint32_t to) const {
    return plan_->RoutesBetween(from, to);
  }

  /// All routes leaving `source` / entering `target`, any shard pair
  /// (the axis-enumeration views for Descendants/Ancestors).
  const std::vector<std::pair<NodeId, uint32_t>>& RoutesFrom(
      NodeId source) const;
  const std::vector<std::pair<NodeId, uint32_t>>& RoutesInto(
      NodeId target) const;

  const ShardPlan& plan() const { return *plan_; }

 private:
  const ShardPlan* plan_;
  std::vector<ShardProbeSet> probe_sets_;
  // element -> outgoing (target, dist) / incoming (source, dist) routes,
  // dense over the element id space (empty for non-endpoint elements).
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> routes_from_;
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> routes_into_;
};

/// One leg answer for ComposeThreeLegs: engaged = reachable, value = leg
/// distance (0 in plain builds).
using LegLookup = std::function<std::optional<uint32_t>(NodeId)>;

/// Pure min-plus composition of one cross-shard probe from its legs:
/// reachable iff some route (s, t, d) has both legs reachable; the
/// distance is min over such routes of source_leg(s) + d + target_leg(t).
/// Deterministic and engine-free — the merge layer's unit-test seam.
/// Returns {reachable, distance}; distance is engaged only when
/// `want_distance` and reachable.
std::pair<bool, std::optional<uint32_t>> ComposeThreeLegs(
    const std::vector<ShardRoute>& routes, const LegLookup& source_leg,
    const LegLookup& target_leg, bool want_distance);

}  // namespace hopi::engine
