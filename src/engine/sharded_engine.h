// ShardedEngine: scatter-gather serving over a ShardPlan.
//
// N shard units — each an EnginePool over a BackendSnapshot holding one
// shard's cover (shard_router.h) — behind one batch front door with the
// same answer semantics as a single QueryEngine over the whole
// collection:
//
//   routing   same-shard pairs go straight to their shard (the plan
//             folded same-shard skeleton routes into each cover, so
//             direct routing is exact even for leave-and-return paths);
//             cross-shard pairs SCATTER — the source shard answers
//             u -> every route source, the target shard answers every
//             route target -> v — and the merge layer composes the
//             three legs by min-plus over the router's skeleton routes
//             (ComposeThreeLegs), exactly how hopi/join.cc composes
//             partition covers.
//   merge     one MergeState per submitted batch collects the per-shard
//             sub-batch results; the LAST completion finalizes. A
//             deadline (merge_deadline) arms a watchdog that finalizes
//             early with whatever arrived: pairs whose legs all landed are
//             answered exactly, the rest are marked unresolved — the
//             degradation contract is "typed partial result, never a
//             wrong bool". status taxonomy:
//               OK                 every sub-batch completed cleanly
//               DeadlineExceeded   >=1 sub-batch still pending at the
//                                  deadline (slow/stalled shard)
//               Unavailable        every sub-batch done but >=1 failed
//               Unsupported        want_distances over a consulted
//                                  shard whose cover is plain
//                                  (detected synchronously, no scatter)
//   affinity  each scatter sub-batch carries lane_hint = the ordered
//             shard pair it serves, so one shard-pair's leg labels
//             concentrate in one worker's cache (BatchRequest doc).
//
// The engine talks to shards ONLY through ShardClient — a narrow,
// callback-based, socket-liftable interface (name / with_distance /
// SubmitBatch / Descendants / Ancestors / Swap). PoolShardClient is the
// in-process binding over an EnginePool; tests inject
// fault-wrapping clients through the same seam, and a TCP client would
// slot in without touching the router or merge layer.
//
// Path queries (/v1/path) reuse the whole single-engine evaluator: a
// private QueryEngine runs over a ShardedBackend adapter whose
// reachability probes are sharded batches and whose
// Descendants/Ancestors expand shard-locally then hop the router's
// route tables once (routes are PSG-closed, so one hop reaches every
// shard). Path work runs on a dedicated worker thread to keep the
// shard pools free for the legs those probes fan into.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "engine/engine.h"
#include "engine/engine_pool.h"
#include "engine/shard_router.h"
#include "engine/snapshot.h"
#include "util/result.h"

namespace hopi::engine {

/// One shard's answer to a scatter sub-batch, with the provenance the
/// stress test validates answers against.
struct ShardBatchResult {
  BatchResponse batch;
  /// Version of the snapshot that served the sub-batch.
  uint64_t snapshot_version = 0;
};

/// The router <-> shard boundary. Deliberately narrow and asynchronous
/// (one submit, one completion callback, no shared memory implied) so
/// the in-process binding below can be replaced by a socket client
/// without touching ShardedEngine. Implementations must be thread-safe;
/// `on_done` may run on any thread and must run exactly once per OK
/// submit (a non-OK SubmitBatch return means it never runs).
class ShardClient {
 public:
  virtual ~ShardClient() = default;

  virtual std::string_view name() const = 0;
  /// Whether this shard's cover carries distances.
  virtual bool with_distance() const = 0;
  /// Version of the snapshot currently serving (advisory; the
  /// authoritative per-answer version rides in ShardBatchResult).
  virtual uint64_t snapshot_version() const = 0;

  virtual Status SubmitBatch(
      BatchRequest request,
      std::function<void(Result<ShardBatchResult>)> on_done) = 0;

  /// Shard-local expansions (the path adapter's building blocks).
  virtual std::vector<NodeId> Descendants(NodeId u) const = 0;
  virtual std::vector<NodeId> Ancestors(NodeId u) const = 0;

  /// Publishes a new serving snapshot (the stress test's churn lever).
  /// Unsupported by default — remote shards manage their own state.
  virtual Status Swap(std::shared_ptr<const BackendSnapshot> snapshot) {
    (void)snapshot;
    return Status::Unsupported("this ShardClient cannot swap snapshots");
  }
};

/// In-process ShardClient over an EnginePool.
class PoolShardClient : public ShardClient {
 public:
  PoolShardClient(std::string name,
                  std::shared_ptr<const BackendSnapshot> snapshot,
                  EnginePoolOptions options);

  std::string_view name() const override { return name_; }
  bool with_distance() const override { return with_distance_; }
  uint64_t snapshot_version() const override;

  Status SubmitBatch(
      BatchRequest request,
      std::function<void(Result<ShardBatchResult>)> on_done) override;

  std::vector<NodeId> Descendants(NodeId u) const override;
  std::vector<NodeId> Ancestors(NodeId u) const override;

  Status Swap(std::shared_ptr<const BackendSnapshot> snapshot) override;

  EnginePool& pool() { return pool_; }

 private:
  std::string name_;
  bool with_distance_;
  EnginePool pool_;
};

/// Aggregated scatter-gather counters (relaxed atomics underneath;
/// monotonic per field, not mutually consistent across fields — same
/// contract as PoolStats).
struct ShardStats {
  uint64_t batches = 0;           ///< Sharded batches finalized.
  uint64_t direct_pairs = 0;      ///< Same-shard pairs routed directly.
  uint64_t cross_pairs = 0;       ///< Pairs scattered across shards.
  /// Cross pairs answered "unreachable" straight from an empty route
  /// table (no probing at all).
  uint64_t routeless_pairs = 0;
  uint64_t subbatches = 0;        ///< Per-shard sub-batches issued.
  uint64_t leg_probes = 0;        ///< Deduplicated leg pairs probed.
  uint64_t partial_batches = 0;   ///< Batches finalized non-OK.
  uint64_t failed_subbatches = 0; ///< Sub-batches that returned errors.
  /// Probes (direct + legs) routed to each shard.
  std::vector<uint64_t> per_shard_probes;
  /// Scatter fan-out per cross pair (leg probes it contributed before
  /// dedup): bucket 0 counts fan-out <= 1 (including routeless pairs),
  /// bucket b >= 1 counts fan-out in [2^b, 2^(b+1)).
  std::array<uint64_t, 16> fanout_histogram{};
  uint64_t merges = 0;                 ///< Finalizations timed.
  uint64_t merge_latency_us_total = 0; ///< Submit -> finalize, summed.
  uint64_t merge_latency_us_max = 0;
};

/// A sharded batch answer. `batch.reachable` / `batch.distances` are
/// parallel to the request pairs as always; `resolved[i]` says whether
/// pair i's answer is authoritative. On an OK status every pair is
/// resolved; on DeadlineExceeded / Unavailable the unresolved pairs
/// report reachable=false / distance=nullopt as PLACEHOLDERS — callers
/// must check `resolved` (the fault-injection suite's core assertion:
/// degradation is typed, never a silently wrong bool). `batch.error`
/// mirrors `status` so the wire layer's partial_error serialization
/// carries it unchanged.
struct ShardedBatchResponse {
  BatchResponse batch;
  std::vector<bool> resolved;
  Status status = Status::OK();
  /// ShardBatchResult::snapshot_version per shard consulted by this
  /// batch; 0 for shards not consulted (or not heard from in time).
  std::vector<uint64_t> shard_versions;
};

struct ShardedEngineOptions {
  /// Serving workers per shard pool (PoolShardClient shards only).
  size_t threads_per_shard = 1;
  /// Per-worker label cache bytes (EnginePoolOptions).
  size_t label_cache_bytes = 4 * 1024 * 1024;
  /// Per-lane bound on queued sub-batches — the per-shard bounded
  /// queue. 0 = unbounded.
  size_t queue_capacity = 256;
  /// Unhinted-traffic dispatch for the shard pools (scatter sub-batches
  /// carry lane hints and bypass this).
  EnginePoolOptions::Dispatch dispatch =
      EnginePoolOptions::Dispatch::kRoundRobin;
  /// Merge deadline: how long a batch waits for its slowest shard
  /// before finalizing partial with DeadlineExceeded. zero() = wait
  /// forever (a stalled shard then stalls the batch — only sensible in
  /// deterministic tests).
  std::chrono::milliseconds merge_deadline{2000};
};

class ShardedEngine {
 public:
  /// Production form: builds one PoolShardClient per plan shard.
  /// `collection` is the one the plan was built from; both must outlive
  /// the engine.
  ShardedEngine(const collection::Collection* collection,
                const ShardPlan* plan, ShardedEngineOptions options = {});

  /// Test seam: same, but with caller-supplied clients (fault
  /// injectors, socket stand-ins). `clients.size()` must equal
  /// `plan->num_shards`.
  ShardedEngine(const collection::Collection* collection,
                const ShardPlan* plan,
                std::vector<std::unique_ptr<ShardClient>> clients,
                ShardedEngineOptions options = {});

  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- batches (any thread) ----

  /// Routes, scatters, and registers the merge; `on_done` runs exactly
  /// once with the merged response — possibly inline (all pairs
  /// resolved at routing time), on a shard completion thread, or on the
  /// watchdog at the deadline. A non-OK return — Unsupported (distance
  /// batch over a plain consulted shard) or FailedPrecondition (after
  /// Shutdown) — means `on_done` never runs; a shard REJECTING its
  /// sub-batch (shed, shut down) is instead delivered through `on_done`
  /// as a failed sub-batch, i.e. an Unavailable partial result.
  Status SubmitBatch(BatchRequest request,
                     std::function<void(ShardedBatchResponse)> on_done);

  /// Submit + wait.
  Result<ShardedBatchResponse> Batch(BatchRequest request);

  // ---- path queries (any thread) ----

  /// Runs the single-engine path evaluator over the sharded backend on
  /// the dedicated path worker. Contract as EnginePool::SubmitQuery.
  Status SubmitQuery(PathQueryRequest request,
                     std::function<void(Result<PoolPathResponse>)> on_done);
  Result<PoolPathResponse> Query(PathQueryRequest request);

  // ---- introspection ----

  size_t num_shards() const { return clients_.size(); }
  const ShardPlan& plan() const { return *plan_; }
  const ShardRouter& router() const { return router_; }
  ShardClient& client(size_t shard) { return *clients_[shard]; }
  /// True when every shard's cover carries distances.
  bool with_distance() const { return with_distance_; }
  size_t ServingElementCount() const { return collection_->NumElements(); }
  size_t ServingDocumentCount() const { return collection_->NumDocuments(); }
  ShardStats Stats() const;

  /// Stops intake, fails outstanding merges with Unavailable, joins the
  /// watchdog and path worker. Shard pools drain in the clients'
  /// destructors. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  friend class ShardedBackend;
  struct MergeState;
  struct SubBatch;

  /// Shared routing pass: fills the merge state's pair plans and
  /// sub-batches. Returns Unsupported for a distance batch touching a
  /// plain shard.
  Status PlanBatch(const BatchRequest& request, MergeState* state);
  void OnSubBatchDone(const std::shared_ptr<MergeState>& state, size_t sub,
                      Result<ShardBatchResult> result);
  /// Builds and delivers the response. Caller must have won the
  /// finalize race (state->finalized set under state->mu).
  void Finalize(const std::shared_ptr<MergeState>& state, Status status);
  void WatchdogLoop();
  void PathWorkerLoop();

  const collection::Collection* collection_;
  const ShardPlan* plan_;
  ShardRouter router_;
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
  bool with_distance_;

  // ---- merge watchdog ----
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  /// Active deadline-bearing merges, unordered (the loop scans; batch
  /// counts are small and scans touch only expired entries' locks).
  std::vector<std::shared_ptr<MergeState>> watched_;
  std::thread watchdog_;

  // ---- path worker ----
  struct PathJob {
    PathQueryRequest request;
    std::function<void(Result<PoolPathResponse>)> on_done;
  };
  std::unique_ptr<QueryEngine> path_engine_;  // over ShardedBackend
  std::mutex path_mu_;
  std::condition_variable path_cv_;
  std::deque<PathJob> path_queue_;
  std::thread path_worker_;

  std::atomic<bool> shutdown_{false};
  std::once_flag shutdown_once_;

  // ---- stats (relaxed atomics; snapshot via Stats()) ----
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> direct_pairs_{0};
  std::atomic<uint64_t> cross_pairs_{0};
  std::atomic<uint64_t> routeless_pairs_{0};
  std::atomic<uint64_t> subbatches_{0};
  std::atomic<uint64_t> leg_probes_{0};
  std::atomic<uint64_t> partial_batches_{0};
  std::atomic<uint64_t> failed_subbatches_{0};
  std::vector<std::atomic<uint64_t>> per_shard_probes_;
  std::array<std::atomic<uint64_t>, 16> fanout_histogram_{};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> merge_latency_us_total_{0};
  std::atomic<uint64_t> merge_latency_us_max_{0};
};

}  // namespace hopi::engine
