#include "engine/shard_router.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "graph/subgraph.h"
#include "hopi/join.h"
#include "partition/psg.h"
#include "twohop/builder.h"
#include "twohop/reverse_index.h"

namespace hopi::engine {

namespace {

/// Largest-first greedy assignment of partitions to shards, balanced by
/// element count. Deterministic: ties broken by partition id, then by
/// shard id.
std::vector<uint32_t> AssignPartitionsToShards(
    const collection::Collection& collection,
    const partition::Partitioning& partitioning, size_t num_shards) {
  const size_t num_parts = partitioning.NumPartitions();
  std::vector<size_t> part_elements(num_parts, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    for (collection::DocId d : partitioning.partitions[p]) {
      part_elements[p] += collection.ElementsOf(d).size();
    }
  }
  std::vector<size_t> order(num_parts);
  for (size_t p = 0; p < num_parts; ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (part_elements[a] != part_elements[b]) {
      return part_elements[a] > part_elements[b];
    }
    return a < b;
  });
  std::vector<uint32_t> shard_of_part(num_parts, 0);
  std::vector<size_t> shard_load(num_shards, 0);
  for (size_t p : order) {
    size_t best = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_of_part[p] = static_cast<uint32_t>(best);
    shard_load[best] += part_elements[p];
  }
  return shard_of_part;
}

/// Folds one shard's same-shard skeleton routes into its cover — the
/// H-bar/H-hat merge of hopi/join.cc step 3, restricted to routes whose
/// endpoints both live in the shard. After this, paths that leave the
/// shard and return are in the labels and direct same-shard routing is
/// exact (every added entry is a true path length, so the cover join can
/// only report real connections). Ancestor/descendant sets and leg
/// distances are snapshotted BEFORE anything is applied, exactly as the
/// join does.
uint64_t AugmentShardCover(const std::vector<ShardRoute>& same_shard,
                           bool with_distance,
                           twohop::IndexedCover* cover) {
  if (same_shard.empty()) return 0;
  uint64_t added = 0;

  // Group routes by source; all endpoints are in-shard by construction,
  // so the cover's ancestor/descendant sets need no membership filter.
  std::map<NodeId, std::vector<std::pair<NodeId, uint32_t>>> by_source;
  for (const ShardRoute& r : same_shard) {
    by_source[r.source].push_back({r.target, r.dist});
  }

  struct AncestorTask {
    NodeId ancestor;
    uint32_t dist_to_source;
    const std::vector<std::pair<NodeId, uint32_t>>* targets;
  };
  std::vector<AncestorTask> ancestor_tasks;
  for (const auto& [s, targets] : by_source) {
    ancestor_tasks.push_back({s, 0, &targets});
    for (NodeId a : cover->Ancestors(s)) {
      uint32_t d = 0;
      if (with_distance) {
        auto dd = cover->cover().Distance(a, s);
        assert(dd.has_value());
        d = *dd;
      }
      ancestor_tasks.push_back({a, d, &targets});
    }
  }

  struct DescendantTask {
    NodeId descendant;
    NodeId target;
    uint32_t dist;
  };
  std::vector<DescendantTask> descendant_tasks;
  std::vector<NodeId> distinct_targets;
  for (const ShardRoute& r : same_shard) distinct_targets.push_back(r.target);
  std::sort(distinct_targets.begin(), distinct_targets.end());
  distinct_targets.erase(
      std::unique(distinct_targets.begin(), distinct_targets.end()),
      distinct_targets.end());
  for (NodeId t : distinct_targets) {
    for (NodeId d : cover->Descendants(t)) {
      uint32_t dist = 0;
      if (with_distance) {
        auto dd = cover->cover().Distance(t, d);
        assert(dd.has_value());
        dist = *dd;
      }
      descendant_tasks.push_back({d, t, dist});
    }
  }

  for (const AncestorTask& task : ancestor_tasks) {
    for (const auto& [t, d] : *task.targets) {
      if (cover->AddOut(task.ancestor, t,
                        with_distance ? task.dist_to_source + d : 0)) {
        ++added;
      }
    }
  }
  for (const DescendantTask& task : descendant_tasks) {
    if (cover->AddIn(task.descendant, task.target,
                     with_distance ? task.dist : 0)) {
      ++added;
    }
  }
  return added;
}

}  // namespace

Result<ShardPlan> BuildShardPlan(collection::Collection* collection,
                                 const ShardPlanOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }

  ShardPlan plan;
  plan.with_distance = options.with_distance;

  // --- Step 1: document partitioning (the shard key) ---
  auto partitioning =
      partition::PartitionCollection(*collection, options.partition);
  if (!partitioning.ok()) return partitioning.status();
  plan.partitioning = std::move(partitioning).value();
  const size_t num_parts = plan.partitioning.NumPartitions();
  plan.stats.num_partitions = num_parts;

  // --- Step 2: partitions -> shards, balanced by element count ---
  plan.num_shards = std::min(options.num_shards, std::max<size_t>(num_parts, 1));
  const size_t n = plan.num_shards;
  std::vector<uint32_t> shard_of_part =
      AssignPartitionsToShards(*collection, plan.partitioning, n);

  plan.shard_of_doc.assign(collection->NumDocuments(), kUnassignedShard);
  plan.docs_of_shard.assign(n, {});
  for (size_t p = 0; p < num_parts; ++p) {
    for (collection::DocId d : plan.partitioning.partitions[p]) {
      plan.shard_of_doc[d] = shard_of_part[p];
      plan.docs_of_shard[shard_of_part[p]].push_back(d);
    }
  }
  plan.shard_of_element.assign(collection->NumElements(), kUnassignedShard);
  for (collection::DocId d = 0; d < collection->NumDocuments(); ++d) {
    if (plan.shard_of_doc[d] == kUnassignedShard) continue;
    for (NodeId e : collection->ElementsOf(d)) {
      plan.shard_of_element[e] = plan.shard_of_doc[d];
    }
  }

  // --- Step 3: per-shard covers (global element ids) ---
  // Per partition: induced subgraph + local 2-hop cover (the hopi/build.cc
  // covers phase), translated into the owning shard's global-id cover;
  // then the intra-shard cross links are joined recursively, giving each
  // shard a cover that is exact for paths staying inside it.
  twohop::CoverBuildOptions cover_options;
  cover_options.with_distance = options.with_distance;
  cover_options.num_threads = std::max<size_t>(options.num_threads, 1);

  std::vector<twohop::TwoHopCover> shard_unified;
  shard_unified.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shard_unified.emplace_back(collection->NumElements());
  }
  for (size_t p = 0; p < num_parts; ++p) {
    std::vector<NodeId> elements;
    for (collection::DocId d : plan.partitioning.partitions[p]) {
      const auto& els = collection->ElementsOf(d);
      elements.insert(elements.end(), els.begin(), els.end());
    }
    InducedSubgraph sub =
        BuildInducedSubgraph(collection->ElementGraph(), elements);
    auto cover = twohop::BuildCover(sub.graph, cover_options);
    if (!cover.ok()) return cover.status();
    twohop::TwoHopCover& unified = shard_unified[shard_of_part[p]];
    for (NodeId local = 0; local < cover->NumNodes(); ++local) {
      NodeId global = sub.Global(local);
      for (const twohop::LabelEntry& e : cover->In(local)) {
        unified.AddIn(global, sub.Global(e.center), e.dist);
      }
      for (const twohop::LabelEntry& e : cover->Out(local)) {
        unified.AddOut(global, sub.Global(e.center), e.dist);
      }
    }
  }

  std::vector<collection::Link> cross_shard_links;
  std::vector<twohop::IndexedCover> shard_covers;
  shard_covers.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shard_covers.emplace_back(std::move(shard_unified[s]));
  }
  {
    // Intra-shard joins: the original partitioning restricted to the
    // links whose endpoints share a shard. Cross-shard links are set
    // aside for the skeleton.
    std::vector<std::vector<collection::Link>> intra(n);
    for (const collection::Link& l : plan.partitioning.cross_links) {
      uint32_t a = plan.shard_of_element[l.source];
      uint32_t b = plan.shard_of_element[l.target];
      assert(a != kUnassignedShard && b != kUnassignedShard);
      if (a == b) {
        intra[a].push_back(l);
      } else {
        cross_shard_links.push_back(l);
      }
    }
    for (size_t s = 0; s < n; ++s) {
      partition::Partitioning shard_view;
      shard_view.partitions = plan.partitioning.partitions;
      shard_view.part_of = plan.partitioning.part_of;
      shard_view.cross_links = std::move(intra[s]);
      HOPI_RETURN_NOT_OK(JoinCoversRecursive(*collection, shard_view,
                                             options.with_distance,
                                             &shard_covers[s]));
    }
  }
  plan.stats.cross_shard_links = cross_shard_links.size();

  // --- Step 4: the shard-level skeleton ---
  // The PSG with "partition" = shard: nodes are cross-shard link
  // endpoints, edges are the cross-shard links (weight 1) plus, inside
  // each shard, target -> source edges weighted by the shard-local
  // distance. Its H-bar cover is the complete route table: the PSG
  // shortest distance s -> t equals the true element-graph shortest
  // distance over paths that leave s's shard at s and enter t's shard at
  // t (decompose any such path at every cross-shard crossing).
  plan.routes.assign(n * n, {});
  std::vector<std::vector<ShardRoute>> same_shard(n);
  if (!cross_shard_links.empty()) {
    partition::Partitioning shard_partitioning;
    shard_partitioning.partitions = plan.docs_of_shard;
    shard_partitioning.part_of = plan.shard_of_doc;
    shard_partitioning.cross_links = cross_shard_links;

    twohop::TwoHopCover combined(collection->NumElements());
    for (size_t s = 0; s < n; ++s) {
      const twohop::TwoHopCover& c = shard_covers[s].cover();
      for (NodeId v = 0; v < c.NumNodes(); ++v) {
        for (const twohop::LabelEntry& e : c.In(v)) {
          combined.AddIn(v, e.center, e.dist);
        }
        for (const twohop::LabelEntry& e : c.Out(v)) {
          combined.AddOut(v, e.center, e.dist);
        }
      }
    }
    twohop::IndexedCover combined_indexed(std::move(combined));
    partition::PartitionSkeletonGraph psg = partition::BuildPsg(
        *collection, shard_partitioning, combined_indexed,
        options.with_distance);
    plan.stats.psg_nodes = psg.graph.NumNodes();
    plan.stats.psg_edges = psg.graph.NumEdges();

    JoinOptions join_options;
    join_options.psg_partition_cap = options.psg_partition_cap;
    std::vector<SkeletonRow> rows = ComputeSkeletonCover(psg, join_options);

    for (const SkeletonRow& row : rows) {
      uint32_t a = plan.shard_of_element[row.source];
      for (const SkeletonTarget& t : row.targets) {
        uint32_t b = plan.shard_of_element[t.target];
        ++plan.stats.skeleton_entries;
        ShardRoute route{row.source, t.target, t.dist};
        if (a == b) {
          same_shard[a].push_back(route);
          ++plan.stats.same_shard_routes;
        } else {
          plan.routes[a * n + b].push_back(route);
          ++plan.stats.cross_shard_routes;
        }
      }
    }
    for (auto& table : plan.routes) {
      std::sort(table.begin(), table.end(),
                [](const ShardRoute& x, const ShardRoute& y) {
                  if (x.source != y.source) return x.source < y.source;
                  return x.target < y.target;
                });
    }
  }

  // --- Step 5: fold same-shard routes into the shard covers ---
  for (size_t s = 0; s < n; ++s) {
    plan.stats.augmented_labels +=
        AugmentShardCover(same_shard[s], options.with_distance,
                          &shard_covers[s]);
  }

  // --- Step 6: freeze each shard cover into an index ---
  plan.indexes.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    plan.indexes.push_back(std::make_shared<const HopiIndex>(
        collection, std::move(*shard_covers[s].mutable_cover()),
        options.with_distance));
  }
  return plan;
}

ShardRouter::ShardRouter(const ShardPlan* plan) : plan_(plan) {
  const size_t n = plan_->num_shards;
  probe_sets_.resize(n * n);
  for (size_t i = 0; i < n * n; ++i) {
    ShardProbeSet& set = probe_sets_[i];
    for (const ShardRoute& r : plan_->routes[i]) {
      set.sources.push_back(r.source);
      set.targets.push_back(r.target);
    }
    std::sort(set.sources.begin(), set.sources.end());
    set.sources.erase(std::unique(set.sources.begin(), set.sources.end()),
                      set.sources.end());
    std::sort(set.targets.begin(), set.targets.end());
    set.targets.erase(std::unique(set.targets.begin(), set.targets.end()),
                      set.targets.end());
  }
  routes_from_.resize(plan_->shard_of_element.size());
  routes_into_.resize(plan_->shard_of_element.size());
  for (const auto& table : plan_->routes) {
    for (const ShardRoute& r : table) {
      routes_from_[r.source].push_back({r.target, r.dist});
      routes_into_[r.target].push_back({r.source, r.dist});
    }
  }
}

const std::vector<std::pair<NodeId, uint32_t>>& ShardRouter::RoutesFrom(
    NodeId source) const {
  static const std::vector<std::pair<NodeId, uint32_t>> kEmpty;
  return source < routes_from_.size() ? routes_from_[source] : kEmpty;
}

const std::vector<std::pair<NodeId, uint32_t>>& ShardRouter::RoutesInto(
    NodeId target) const {
  static const std::vector<std::pair<NodeId, uint32_t>> kEmpty;
  return target < routes_into_.size() ? routes_into_[target] : kEmpty;
}

std::pair<bool, std::optional<uint32_t>> ComposeThreeLegs(
    const std::vector<ShardRoute>& routes, const LegLookup& source_leg,
    const LegLookup& target_leg, bool want_distance) {
  bool reachable = false;
  std::optional<uint32_t> best;
  NodeId current_source = kInvalidNode;
  std::optional<uint32_t> current_source_leg;
  for (const ShardRoute& r : routes) {
    if (r.source != current_source) {
      current_source = r.source;
      current_source_leg = source_leg(r.source);
    }
    if (!current_source_leg.has_value()) continue;
    std::optional<uint32_t> tail = target_leg(r.target);
    if (!tail.has_value()) continue;
    reachable = true;
    if (!want_distance) break;  // any connected route settles the bool
    uint32_t total = *current_source_leg + r.dist + *tail;
    if (!best.has_value() || total < *best) best = total;
  }
  if (!want_distance) return {reachable, std::nullopt};
  return {reachable, reachable ? best : std::nullopt};
}

}  // namespace hopi::engine
