// Delta overlay: serve mutations before the next index rebuild.
//
// HOPI's incremental maintenance (paper Sec 6) rewrites labels in
// place, so a mutation used to become visible only after a full
// Freeze()+Swap() of the maintenance index. The overlay closes that
// gap: the pool keeps serving an immutable BackendSnapshot while recent
// mutations accumulate in a small, immutable DeltaState next to it, and
// a DeltaOverlayBackend answers probes against the *combined* graph —
// base edges minus delta deletions plus delta insertions.
//
// The probe strategy is index-hit ∨ bounded bidirectional BFS (the
// hop-bounded forward/backward search with frontier intersection of
// katana's Reachability.cpp):
//
//   1. base hit — when the delta contains no base-edge or base-document
//      removals, edge insertion is monotone for reachability, so a
//      positive answer from the base index is still a positive answer;
//   2. bounded BFS — otherwise (or when the base says no), expand a
//      forward frontier from u and a backward frontier from v through
//      the combined adjacency, always growing the smaller side, up to
//      `hop_budget` hops per side; meeting frontiers prove
//      reachability, an emptied frontier proves unreachability;
//   3. typed unknown → recheck — a probe that exhausts the hop budget
//      on both sides is *unknown*, surfaced in OverlayCounters as a
//      budget exhaustion, and escalated to an unbounded search so the
//      answer handed to the client is still exact.
//
// Large frontiers are expanded through a shared util::ThreadPool
// (ParallelFor): workers scan adjacency read-only into per-worker
// candidate buffers and the calling thread merges them sequentially, so
// the visited stamps have a single writer. The pool's re-entrancy guard
// (util/thread_pool.h) makes it safe for many concurrent probes to
// target one pool — losers degrade to inline expansion.
//
// DeltaState is copy-on-write: Apply() validates one mutation against
// base ∪ delta and returns the successor state, so readers holding the
// previous shared_ptr are never disturbed. Generations are *global*
// ops-ever-applied counts — RebaseAfter() (the rebuild truncation)
// drops absorbed ops but keeps the count monotonic, which lets a
// response tagged with generation g be validated against the one
// logical graph at g regardless of how many rebuilds happened since.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collection/collection.h"
#include "engine/backend.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace hopi::engine {

/// One element of a document inserted through the delta. `parent` is
/// the index of an *earlier* element in the same document's element
/// list (nullopt for the root — exactly one per document, first).
struct NewElementSpec {
  std::string tag;
  std::optional<uint32_t> parent;
};

/// One write operation. The op log of these IS the definition of the
/// combined graph: replaying a mutation onto a live Collection (see
/// ApplyMutationToCollection) must produce exactly the state the
/// overlay serves — tests' oracle mirrors and the rebuild path both
/// rely on that equivalence, including element/document id assignment
/// (Collection allocates both sequentially, so replay order fixes ids).
struct Mutation {
  enum class Kind : uint8_t {
    kInsertLink,
    kDeleteLink,
    kInsertDocument,
    kDeleteDocument,
  };

  Kind kind = Kind::kInsertLink;
  // kInsertLink / kDeleteLink
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
  // kInsertDocument
  std::string doc_name;
  std::vector<NewElementSpec> elements;
  // kDeleteDocument
  collection::DocId doc = collection::kInvalidDoc;

  static Mutation InsertLink(NodeId u, NodeId v);
  static Mutation DeleteLink(NodeId u, NodeId v);
  static Mutation InsertDocument(std::string name,
                                 std::vector<NewElementSpec> elements);
  static Mutation DeleteDocument(collection::DocId doc);
};

/// Replays one already-validated mutation onto a live collection — the
/// mapping that defines what each op means. Used by the rebuild
/// materialization and by tests' oracle mirrors; apply the same ops in
/// the same order to a copy of the base collection and you hold the
/// exact graph the overlay serves (same element and document ids).
Status ApplyMutationToCollection(const Mutation& m,
                                 collection::Collection* collection);

/// Immutable accumulated-mutation state over one base snapshot.
///
/// Holds the ordered op log since the last rebuild truncation plus the
/// derived probe structures (delta adjacency, deleted base edges, dead
/// documents, new-element directory). Apply() is copy-on-write; every
/// instance is safe to share across threads forever.
class DeltaState {
 public:
  /// A fresh, empty delta over a base with `base_elements` elements and
  /// `base_documents` documents, continuing the global op count at
  /// `generation`.
  static std::shared_ptr<const DeltaState> MakeEmpty(size_t base_elements,
                                                     size_t base_documents,
                                                     uint64_t generation);

  /// Validates `m` against base ∪ delta and returns the successor
  /// state. `base` must be the collection of the snapshot this delta
  /// overlays. Typed failures (InvalidArgument / NotFound) mirror the
  /// Sec-6 maintenance preconditions so the delta and a maintenance
  /// index fed the same ops accept and reject identically.
  Result<std::shared_ptr<const DeltaState>> Apply(
      const Mutation& m, const collection::Collection& base) const;

  /// The rebuild truncation: drops every op with generation <= `through`
  /// (they are absorbed into the new base) and rebases the survivors
  /// onto a base of the given sizes. generation() is preserved.
  std::shared_ptr<const DeltaState> RebaseAfter(uint64_t through,
                                                size_t base_elements,
                                                size_t base_documents) const;

  /// Replays every retained op, in order, onto `collection` (which must
  /// be a copy of this delta's base).
  Status Replay(collection::Collection* collection) const;

  /// Retained ops with generation > `g` (a suffix of the op log; views
  /// into this state, valid while it lives).
  std::span<const Mutation> OpsAfter(uint64_t g) const;

  // ---- identity ----

  /// Global monotonic count of ops ever applied through this delta
  /// chain — NOT reset by RebaseAfter. The combined logical graph at a
  /// given generation is unique, whatever the rebuild schedule.
  uint64_t generation() const { return generation_; }
  /// Retained (un-absorbed) ops.
  size_t num_ops() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  // ---- sizes ----

  size_t base_elements() const { return base_elements_; }
  size_t num_elements() const {
    return base_elements_ + new_element_docs_.size();
  }
  size_t base_documents() const { return base_documents_; }
  size_t num_documents() const { return base_documents_ + new_docs_; }

  // ---- probe surface ----

  /// True when the delta removed base structure (a base edge or a base
  /// document) — the condition under which a positive base-index
  /// answer can no longer be trusted. Removals of delta-only structure
  /// do not trip this: they never invalidate base reachability.
  bool has_base_removals() const {
    return !deleted_edges_.empty() || dead_base_docs_ != 0;
  }
  bool has_dead_docs() const { return !dead_docs_.empty(); }
  size_t num_deleted_edges() const { return deleted_edges_.size(); }

  /// Document of a delta-created element (precondition:
  /// base_elements() <= e < num_elements()).
  collection::DocId DocOfNew(NodeId e) const {
    return new_element_docs_[e - base_elements_];
  }
  /// True when `doc` was deleted through the delta. (Documents already
  /// dead in the base are the base collection's to report.)
  bool IsDeadDoc(collection::DocId doc) const {
    return !dead_docs_.empty() && dead_docs_.count(doc) != 0;
  }
  bool IsEdgeDeleted(NodeId u, NodeId v) const {
    return !deleted_edges_.empty() && deleted_edges_.count(EdgeKey(u, v)) != 0;
  }
  /// Delta out-/in-adjacency of a node, or nullptr when it has none.
  /// Includes inserted links and the tree edges of delta-created
  /// documents; never includes deleted edges.
  const std::vector<NodeId>* DeltaOut(NodeId u) const {
    auto it = delta_out_.find(u);
    return it == delta_out_.end() ? nullptr : &it->second;
  }
  const std::vector<NodeId>* DeltaIn(NodeId v) const {
    auto it = delta_in_.find(v);
    return it == delta_in_.end() ? nullptr : &it->second;
  }

 private:
  DeltaState() = default;

  static uint64_t EdgeKey(NodeId u, NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }
  /// Generation of retained op `i` (0-based index into ops_).
  uint64_t GenerationOfOp(size_t i) const {
    return generation_ - ops_.size() + i + 1;
  }

  /// Updates the derived structures for one validated op. Shared by
  /// Apply (on the copy) and RebaseAfter (replaying the kept suffix).
  void ApplyDerived(const Mutation& m);
  void AddDeltaEdge(NodeId u, NodeId v, bool is_link);
  void RemoveDeltaLink(NodeId u, NodeId v);

  uint64_t generation_ = 0;
  std::vector<Mutation> ops_;  // retained suffix, oldest first

  size_t base_elements_ = 0;
  size_t base_documents_ = 0;

  // Derived probe structures.
  std::unordered_map<NodeId, std::vector<NodeId>> delta_out_;
  std::unordered_map<NodeId, std::vector<NodeId>> delta_in_;
  /// Deleted BASE edges only — deleting a delta-inserted link removes
  /// it from the delta adjacency instead, which keeps has_base_removals
  /// an exact monotonicity test.
  std::unordered_set<uint64_t> deleted_edges_;
  /// Links (not tree edges) currently present in the delta adjacency.
  std::unordered_set<uint64_t> delta_links_;
  /// All edges currently present in the delta adjacency (links + tree
  /// edges of delta documents).
  std::unordered_set<uint64_t> delta_edges_;
  std::unordered_set<collection::DocId> dead_docs_;
  size_t dead_base_docs_ = 0;
  size_t new_docs_ = 0;
  /// Owning document of each delta-created element, indexed by
  /// (id - base_elements_).
  std::vector<collection::DocId> new_element_docs_;
};

/// Monotonic probe-outcome counters, shared by every overlay backend
/// instance a pool's workers create (relaxed atomics; read by
/// EnginePool::Stats and the /stats endpoint).
struct OverlayCounters {
  std::atomic<uint64_t> probes{0};          ///< Non-reflexive probes.
  std::atomic<uint64_t> base_hits{0};       ///< Answered by the base index.
  std::atomic<uint64_t> bfs_fallbacks{0};   ///< Went to the bounded BFS.
  std::atomic<uint64_t> bfs_reachable{0};   ///< Frontiers met within budget.
  std::atomic<uint64_t> bfs_unreachable{0}; ///< A frontier emptied.
  /// Hop budget exhausted on both sides — the typed "unknown" that was
  /// escalated to the unbounded recheck.
  std::atomic<uint64_t> budget_exhaustions{0};
  std::atomic<uint64_t> parallel_expansions{0};  ///< Frontiers via the pool.
};

struct DeltaOverlayOptions {
  /// Hops each BFS frontier may expand before the probe is declared
  /// unknown and escalated to the unbounded recheck.
  size_t hop_budget = 8;
  /// Frontier size at or above which expansion goes through `pool`
  /// (below it, inline expansion beats the hand-off).
  size_t parallel_frontier_threshold = 128;
  /// Pool driving large-frontier expansion; nullptr = always inline.
  /// May be shared with anything else (including other probes running
  /// concurrently) — contended ParallelFor calls fall back to inline
  /// execution.
  ThreadPool* pool = nullptr;
};

/// ReachabilityBackend over base ∪ delta.
///
/// Label-less (HasLabels() = false): the QueryEngine batch path routes
/// every probe through TestConnections/IsReachable, which is where the
/// index-hit ∨ bounded-BFS strategy lives. Not distance-aware — under a
/// non-empty delta, connected pairs report distance 0 (the pool serves
/// exact distances again after the next rebuild truncates the delta).
///
/// Instances carry per-probe scratch (epoch-stamped visited arrays):
/// one instance serves one thread at a time, the same contract as every
/// other backend behind a QueryEngine. The shared `counters` and
/// `options.pool` may be used by any number of instances concurrently.
class DeltaOverlayBackend final : public ReachabilityBackend {
 public:
  /// Where a probe's answer came from — the typed outcome behind
  /// IsReachable, exposed for tests and stats. kRecheck* outcomes are
  /// budget exhaustions whose exact answer came from the unbounded
  /// escalation.
  enum class Outcome : uint8_t {
    kReflexive,           // u == v
    kBaseHit,             // base index said yes and the delta kept it valid
    kDeadEndpoint,        // an endpoint's document is deleted
    kBfsReachable,        // frontiers met within the hop budget
    kBfsUnreachable,      // a frontier emptied within the hop budget
    kRecheckReachable,    // unknown at the budget; unbounded search: yes
    kRecheckUnreachable,  // unknown at the budget; unbounded search: no
  };
  static bool IsReachableOutcome(Outcome o) {
    return o == Outcome::kReflexive || o == Outcome::kBaseHit ||
           o == Outcome::kBfsReachable || o == Outcome::kRecheckReachable;
  }

  /// `base` answers the un-mutated snapshot; `base_collection` is the
  /// snapshot's collection (adjacency + document liveness);  both must
  /// outlive this backend, as must `counters` when non-null. `delta`
  /// is shared and immutable.
  DeltaOverlayBackend(std::unique_ptr<ReachabilityBackend> base,
                      const collection::Collection* base_collection,
                      std::shared_ptr<const DeltaState> delta,
                      DeltaOverlayOptions options = {},
                      OverlayCounters* counters = nullptr);

  std::string_view Name() const override { return "overlay"; }
  bool with_distance() const override { return false; }

  bool IsReachable(NodeId u, NodeId v) const override {
    return IsReachableOutcome(Probe(u, v));
  }
  /// 0 for connected pairs, nullopt otherwise (not distance-aware).
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override;
  std::vector<NodeId> Descendants(NodeId u) const override;
  std::vector<NodeId> Ancestors(NodeId u) const override;

  /// The typed probe. Every call books the OverlayCounters.
  Outcome Probe(NodeId u, NodeId v) const;

  const DeltaState& delta() const { return *delta_; }

 private:
  enum class SearchResult : uint8_t { kFound, kExhausted, kBudget };

  /// True when the element's document was deleted through the delta.
  bool IsDeadNode(NodeId e) const;
  /// Calls fn(y) for every combined-graph neighbor of x in the given
  /// direction, skipping deleted edges and dead endpoints. Read-only —
  /// safe from ParallelFor workers.
  template <typename Fn>
  void ForEachNeighbor(NodeId x, bool forward, Fn&& fn) const;

  /// Bidirectional BFS with `budget` hops per side. kBudget is
  /// impossible when budget is SIZE_MAX (the recheck configuration).
  SearchResult BidirectionalSearch(NodeId u, NodeId v, size_t budget) const;
  /// Expands `frontier` one hop into `next`, stamping `mark` (and
  /// testing `other_mark` for the meet). Returns true on a meet.
  bool ExpandFrontier(const std::vector<NodeId>& frontier, bool forward,
                      std::vector<NodeId>* next, std::vector<uint32_t>* mark,
                      const std::vector<uint32_t>* other_mark) const;
  void PrepareEpoch() const;
  /// Unbounded single-direction BFS used by Descendants/Ancestors;
  /// returns visited nodes excluding `start` unless a cycle re-reaches
  /// it (matching the closure baseline's strictness).
  std::vector<NodeId> Collect(NodeId start, bool forward) const;

  std::unique_ptr<ReachabilityBackend> base_;
  const collection::Collection* base_collection_;
  std::shared_ptr<const DeltaState> delta_;
  DeltaOverlayOptions options_;
  OverlayCounters* counters_;  // may be null (standalone use)

  // Per-probe scratch, reused across calls (single-thread contract).
  mutable std::vector<uint32_t> fwd_mark_;
  mutable std::vector<uint32_t> bwd_mark_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<NodeId> fwd_frontier_;
  mutable std::vector<NodeId> bwd_frontier_;
  mutable std::vector<NodeId> scratch_next_;
  /// Per-ParallelFor-worker candidate buffers (disjoint slots).
  mutable std::vector<std::vector<NodeId>> worker_candidates_;
};

}  // namespace hopi::engine
