// The concrete ReachabilityBackend adapters (paper Sec 5.1's access
// paths):
//
//   HopiIndexBackend      in-memory 2-hop cover labels
//                         (engine/hopi_backend.h),
//   LinLoutBackend        the heap-loaded LIN/LOUT index-organized
//                         tables (storage/linlout.h),
//   MappedLinLoutBackend  the mmap-backed zero-copy LIN/LOUT reader
//                         (storage/mapped_linlout.h),
//   ClosureBackend        the materialized transitive closure baseline
//                         (hopi/baseline.h).
//
// All adapters are non-owning views: the wrapped index must outlive the
// adapter. They are header-only so thin shims can construct them
// without linking the engine library.
//
// Thread sharing: every adapter is stateless beyond its wrapped
// pointer, so any number of threads may query one adapter — or their
// own adapters over one store — concurrently, PROVIDED the wrapped
// object is never mutated meanwhile. engine/snapshot.h packages that
// guarantee (BackendSnapshot keeps the store alive and frozen and
// hands each EnginePool worker a fresh adapter via MakeBackend).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "engine/backend.h"
#include "engine/hopi_backend.h"
#include "hopi/baseline.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"

namespace hopi::engine {

/// Adapter over the LIN/LOUT index-organized tables. Labels are
/// materialized from table rows on demand, so the engine's LRU cache is
/// what makes repeated probes cheap.
class LinLoutBackend final : public ReachabilityBackend {
 public:
  explicit LinLoutBackend(const storage::LinLoutStore& store)
      : store_(&store) {}

  std::string_view Name() const override { return "linlout"; }
  bool with_distance() const override { return store_->with_distance(); }

  bool IsReachable(NodeId u, NodeId v) const override {
    return store_->TestConnection(u, v);
  }
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    return store_->MinDistance(u, v);
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return store_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return store_->Ancestors(u);
  }

  bool HasLabels() const override { return true; }
  Label OutLabel(NodeId u) const override {
    Label label;
    store_->LoutLabel(u, &label);
    return label;
  }
  Label InLabel(NodeId v) const override {
    Label label;
    store_->LinLabel(v, &label);
    return label;
  }

 private:
  const storage::LinLoutStore* store_;
};

/// Adapter over the mmap-backed LIN/LOUT reader. For raw (v3) stores,
/// labels are lent to the engine as spans over the file image (the
/// borrow route), so batch queries run zero-copy off disk — no cache
/// traffic at all. For block-compressed (v4) stores the adapter speaks
/// the block route instead: it names the block holding a node's row
/// and decodes it on demand, and the engine's byte-budgeted cache
/// keeps hot blocks resident (nodes without rows still borrow an
/// engaged empty view — no decode for them).
class MappedLinLoutBackend final : public ReachabilityBackend {
 public:
  explicit MappedLinLoutBackend(const storage::MappedLinLoutStore& store)
      : store_(&store) {}

  std::string_view Name() const override {
    return store_->compressed() ? "mapped-v4" : "mapped";
  }
  bool with_distance() const override { return store_->with_distance(); }

  bool IsReachable(NodeId u, NodeId v) const override {
    return store_->TestConnection(u, v);
  }
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    return store_->MinDistance(u, v);
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return store_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return store_->Ancestors(u);
  }

  bool HasLabels() const override { return true; }
  Label OutLabel(NodeId u) const override {
    if (!store_->compressed()) {
      auto span = store_->LoutSpan(u);
      return Label(span.begin(), span.end());
    }
    auto row = store_->DecodeLoutRow(u);
    return row.ok() ? Label(row->entries.begin(), row->entries.end())
                    : Label{};
  }
  Label InLabel(NodeId v) const override {
    if (!store_->compressed()) {
      auto span = store_->LinSpan(v);
      return Label(span.begin(), span.end());
    }
    auto row = store_->DecodeLinRow(v);
    return row.ok() ? Label(row->entries.begin(), row->entries.end())
                    : Label{};
  }
  std::optional<LabelView> BorrowOutLabel(NodeId u) const override {
    if (!store_->compressed()) return LabelView(store_->LoutSpan(u));
    // A compressed store can still borrow the one label it never has
    // to decode: the empty one.
    if (!store_->LoutBlockHandle(u)) return LabelView{};
    return std::nullopt;
  }
  std::optional<LabelView> BorrowInLabel(NodeId v) const override {
    if (!store_->compressed()) return LabelView(store_->LinSpan(v));
    if (!store_->LinBlockHandle(v)) return LabelView{};
    return std::nullopt;
  }
  std::optional<uint64_t> OutLabelBlock(NodeId u) const override {
    return store_->LoutBlockHandle(u);
  }
  std::optional<uint64_t> InLabelBlock(NodeId v) const override {
    return store_->LinBlockHandle(v);
  }
  Result<LabelBlock> DecodeLabelBlock(uint64_t handle) const override {
    return store_->DecodeBlock(handle);
  }

 private:
  const storage::MappedLinLoutStore* store_;
};

/// Adapter over the materialized transitive-closure baseline. Carries no
/// 2-hop labels, so the QueryEngine batch path probes it directly.
class ClosureBackend final : public ReachabilityBackend {
 public:
  /// `with_distance` must match the flag the closure was built with
  /// (TransitiveClosureIndex does not expose it).
  ClosureBackend(const TransitiveClosureIndex& closure, bool with_distance)
      : closure_(&closure), with_distance_(with_distance) {}

  std::string_view Name() const override { return "closure"; }
  bool with_distance() const override { return with_distance_; }

  bool IsReachable(NodeId u, NodeId v) const override {
    return closure_->IsReachable(u, v);
  }
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    return closure_->Distance(u, v);
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return closure_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return closure_->Ancestors(u);
  }

 private:
  const TransitiveClosureIndex* closure_;
  bool with_distance_;
};

}  // namespace hopi::engine
