// BackendSnapshot: one immutable, reference-counted serving unit.
//
// The serving layer (engine/engine_pool.h) runs many reader threads
// against one index while a maintenance path (hopi/maintenance.cc)
// mutates a *different*, private copy — HopiIndex's incremental
// operations rewrite labels in place and are not safe to run under
// concurrent readers. The snapshot is the hand-off object between the
// two worlds: it bundles an access path (any of the four
// ReachabilityBackend adapters), the collection it indexes, and a
// pre-built tag index, all frozen at creation, under one
// std::shared_ptr<const BackendSnapshot>. Publication is RCU-style:
// EnginePool::Swap() stores the new shared_ptr; readers that grabbed
// the old one keep it alive until their in-flight queries finish, and
// the last reference reclaims the old index. The index data itself is
// never locked and no reader ever observes a half-updated label set —
// the only synchronization on the serving path is one brief
// pointer-copy lock per *work item* (items are whole batches, so the
// critical section is amortized across hundreds of probes).
//
// Two ways to make one:
//   - the Of* factories share ownership of an existing immutable
//     object (use Unowned() for stack-owned objects that provably
//     outlive the pool — tests, benches);
//   - Freeze() deep-copies a live HopiIndex + collection, which is the
//     maintenance hand-off: mutate your private index, Freeze it,
//     Swap the frozen copy in, keep mutating the private one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "collection/collection.h"
#include "engine/backend.h"
#include "hopi/baseline.h"
#include "hopi/index.h"
#include "query/tag_index.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"

namespace hopi::engine {

/// Non-owning shared_ptr over `object` (the aliasing constructor with
/// an empty control block). For handing stack- or caller-owned objects
/// to the Of* snapshot factories when the caller guarantees the object
/// outlives every snapshot reference.
template <typename T>
std::shared_ptr<const T> Unowned(const T& object) {
  return std::shared_ptr<const T>(std::shared_ptr<const void>(), &object);
}

class BackendSnapshot {
 public:
  // ---- factories over the four access paths ----
  //
  // Each shares ownership of the wrapped object(s) and builds the
  // snapshot's tag index eagerly (O(collection), paid once per
  // snapshot instead of once per serving thread) — or reuses a
  // caller-supplied `tags` built over the SAME collection object, so
  // rotating several snapshots of one collection (hopi / linlout /
  // mapped over the same cover, rollback pairs) pays the build once.
  // The wrapped objects must never be mutated while any snapshot
  // reference exists.

  /// In-memory 2-hop cover. The index's collection pointer must stay
  /// valid (Freeze() instead makes the snapshot self-contained).
  static std::shared_ptr<const BackendSnapshot> OfIndex(
      std::shared_ptr<const HopiIndex> index,
      std::shared_ptr<const query::TagIndex> tags = nullptr);

  /// Heap-loaded LIN/LOUT tables; `collection` is the collection the
  /// store's cover was built from.
  static std::shared_ptr<const BackendSnapshot> OfStore(
      std::shared_ptr<const collection::Collection> collection,
      std::shared_ptr<const storage::LinLoutStore> store,
      std::shared_ptr<const query::TagIndex> tags = nullptr);

  /// Mmap-backed LIN/LOUT reader (label spans are lent zero-copy, so N
  /// serving threads share one file image).
  static std::shared_ptr<const BackendSnapshot> OfMappedStore(
      std::shared_ptr<const collection::Collection> collection,
      std::shared_ptr<const storage::MappedLinLoutStore> store,
      std::shared_ptr<const query::TagIndex> tags = nullptr);

  /// Materialized transitive-closure baseline. `with_distance` must
  /// match the flag the closure was built with.
  static std::shared_ptr<const BackendSnapshot> OfClosure(
      std::shared_ptr<const collection::Collection> collection,
      std::shared_ptr<const TransitiveClosureIndex> closure,
      bool with_distance,
      std::shared_ptr<const query::TagIndex> tags = nullptr);

  /// Deep-copies `index` (cover + collection) into a self-contained
  /// snapshot. This is the maintenance hand-off: the source index may
  /// be freely mutated — or destroyed — afterwards. O(index size).
  /// Always builds a fresh tag index: the frozen collection is a new
  /// object, and a tag index bound to the still-mutable source would
  /// silently drift with it.
  static std::shared_ptr<const BackendSnapshot> Freeze(const HopiIndex& index);

  // ---- the frozen surface ----

  /// Process-wide monotonic id, assigned at snapshot creation. Pool
  /// responses carry the version of the snapshot that served them, so
  /// a client (or the stress test) can match answers to index states
  /// across Swaps.
  uint64_t version() const { return version_; }

  /// Name of the wrapped access path ("hopi", "linlout", "mapped",
  /// "closure").
  std::string_view BackendName() const { return backend_name_; }

  const collection::Collection& collection() const { return *collection_; }

  /// The snapshot-shared tag index (built over collection() at
  /// creation; immutable, safe to share across threads).
  const std::shared_ptr<const query::TagIndex>& tags() const { return tags_; }

  /// Fresh non-owning adapter viewing this snapshot's storage. The
  /// snapshot must outlive the adapter — callers keep their
  /// shared_ptr<const BackendSnapshot> alongside it (EnginePool workers
  /// store both in one WorkerState).
  std::unique_ptr<ReachabilityBackend> MakeBackend() const {
    return make_backend_();
  }

 private:
  BackendSnapshot(std::shared_ptr<const collection::Collection> collection,
                  std::string_view backend_name,
                  std::function<std::unique_ptr<ReachabilityBackend>()>
                      make_backend,
                  std::shared_ptr<const void> keepalive,
                  std::shared_ptr<const query::TagIndex> tags);

  uint64_t version_;
  std::string_view backend_name_;
  std::shared_ptr<const collection::Collection> collection_;
  std::shared_ptr<const query::TagIndex> tags_;
  std::function<std::unique_ptr<ReachabilityBackend>()> make_backend_;
  // Owns whatever the backend factory captures raw pointers into (the
  // index / store / closure, or Freeze's private copies).
  std::shared_ptr<const void> keepalive_;
};

}  // namespace hopi::engine
