#include "engine/label_cache.h"

#include <utility>

namespace hopi::engine {

LabelCache::LabelCache(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {}

const Label* LabelCache::Get(Side side, NodeId node) {
  auto it = map_.find(KeyFor(side, node));
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->label;
}

const Label* LabelCache::Put(Side side, NodeId node, Label label) {
  uint64_t key = KeyFor(side, node);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->label = std::move(label);
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->label;
  }
  if (map_.size() >= capacity_) {
    ++evictions_;
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front({key, std::move(label)});
  map_.emplace(key, lru_.begin());
  return &lru_.front().label;
}

void LabelCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace hopi::engine
