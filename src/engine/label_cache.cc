#include "engine/label_cache.h"

#include <iterator>
#include <utility>

namespace hopi::engine {

LabelCache::LabelCache(size_t byte_budget) : byte_budget_(byte_budget) {}

LabelCache::LabelCache(LabelCache&& other) noexcept
    : map_(std::move(other.map_)),
      rows_(std::move(other.rows_)),
      byte_budget_(other.byte_budget_),
      resident_(other.resident_),
      clock_(other.clock_),
      size_(other.size_.load(std::memory_order_relaxed)),
      bytes_(other.bytes_.load(std::memory_order_relaxed)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      misses_(other.misses_.load(std::memory_order_relaxed)),
      evictions_(other.evictions_.load(std::memory_order_relaxed)),
      blocks_decoded_(other.blocks_decoded_.load(std::memory_order_relaxed)),
      decode_nanos_(other.decode_nanos_.load(std::memory_order_relaxed)) {
  // The counters moved with the entries; a moved-from cache is empty
  // and must report like one (no phantom hits from its past life).
  other.resident_ = 0;
  other.clock_ = 0;
  other.size_.store(0, std::memory_order_relaxed);
  other.bytes_.store(0, std::memory_order_relaxed);
  other.hits_.store(0, std::memory_order_relaxed);
  other.misses_.store(0, std::memory_order_relaxed);
  other.evictions_.store(0, std::memory_order_relaxed);
  other.blocks_decoded_.store(0, std::memory_order_relaxed);
  other.decode_nanos_.store(0, std::memory_order_relaxed);
}

LabelBlock LabelCache::Get(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.used = ++clock_;
  return it->second.block;
}

LabelBlock LabelCache::GetRow(uint64_t row_key, uint32_t* row) {
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return nullptr;
  if (LabelBlock block = it->second.block.lock()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    *row = it->second.row;
    return block;
  }
  rows_.erase(it);  // the block died; let the block route rebuild this
  return nullptr;
}

void LabelCache::MemoRow(uint64_t row_key, const LabelBlock& block,
                         uint32_t row) {
  rows_[row_key] = RowRef{block, row};
}

void LabelCache::EvictUntilWithinBudget() {
  while (resident_ > byte_budget_ && !map_.empty()) {
    auto victim = map_.begin();
    for (auto it = std::next(victim); it != map_.end(); ++it) {
      if (it->second.used < victim->second.used) victim = it;
    }
    resident_ -= victim->second.bytes;
    map_.erase(victim);  // may free the block, unless a caller pins it
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

LabelBlock LabelCache::Put(uint64_t key, LabelBlock block) {
  const size_t bytes =
      block ? block->ApproxBytes() : sizeof(storage::DecodedBlock);
  auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) resident_ -= it->second.bytes;
  it->second.block = block;
  it->second.bytes = bytes;
  it->second.used = ++clock_;
  resident_ += bytes;
  // Shed least-recently-used entries until the budget holds. The entry
  // just inserted is fair game too (budget smaller than one block):
  // the caller's pin keeps the returned block alive regardless.
  EvictUntilWithinBudget();
  size_.store(map_.size(), std::memory_order_relaxed);
  bytes_.store(resident_, std::memory_order_relaxed);
  return block;
}

void LabelCache::RecordDecode(uint64_t nanos) {
  blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  decode_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

void LabelCache::Clear() {
  map_.clear();
  rows_.clear();
  resident_ = 0;
  size_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace hopi::engine
