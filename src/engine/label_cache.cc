#include "engine/label_cache.h"

#include <utility>

namespace hopi::engine {

LabelCache::LabelCache(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {}

LabelCache::LabelCache(LabelCache&& other) noexcept
    : lru_(std::move(other.lru_)),
      map_(std::move(other.map_)),
      capacity_(other.capacity_),
      size_(other.size_.load(std::memory_order_relaxed)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      misses_(other.misses_.load(std::memory_order_relaxed)),
      evictions_(other.evictions_.load(std::memory_order_relaxed)) {
  // The counters moved with the entries; a moved-from cache is empty
  // and must report like one (no phantom hits from its past life).
  other.size_.store(0, std::memory_order_relaxed);
  other.hits_.store(0, std::memory_order_relaxed);
  other.misses_.store(0, std::memory_order_relaxed);
  other.evictions_.store(0, std::memory_order_relaxed);
}

const Label* LabelCache::Get(Side side, NodeId node) {
  auto it = map_.find(KeyFor(side, node));
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->label;
}

const Label* LabelCache::Put(Side side, NodeId node, Label label) {
  uint64_t key = KeyFor(side, node);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->label = std::move(label);
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->label;
  }
  if (map_.size() >= capacity_) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front({key, std::move(label)});
  map_.emplace(key, lru_.begin());
  size_.store(map_.size(), std::memory_order_relaxed);
  return &lru_.front().label;
}

void LabelCache::Clear() {
  lru_.clear();
  map_.clear();
  size_.store(0, std::memory_order_relaxed);
}

}  // namespace hopi::engine
