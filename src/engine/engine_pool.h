// EnginePool: thread-per-core serving over snapshot-swappable backends.
//
// The ROADMAP's async-serving item, concretely: N long-lived serving
// workers, each owning one QueryEngine (and therefore one private
// LabelCache — caches stay thread-local and lock-free), all bound to
// one shared immutable BackendSnapshot. Work (batched reachability,
// path queries) enters through an MPMC lane queue and completes through
// std::future; producers pick the lane round-robin (cache affinity) or
// least-loaded (balance).
//
// Snapshot swap is RCU-style: Swap() publishes a new serving state and
// returns immediately. Workers notice on their *next* work item, rebind
// (a fresh backend adapter + a fresh cold label cache; the tag index is
// snapshot-shared, so rebinding is O(1)), and the old snapshot is
// reclaimed by its last in-flight reference — queries already executing
// finish on the state they started with, never a torn mix. Every
// response carries the version of the snapshot that served it.
//
// Consistency contract under Swap: each *response* is entirely computed
// against one serving state (the snapshot version + delta generation it
// reports). Two requests submitted around a Swap may be served from
// different states, and two workers may briefly serve different
// versions — this is eventual, per-item consistency, the standard RCU
// trade. A caller that needs a barrier can Swap() and then wait for one
// sentinel request per worker lane.
//
// Mutation (serve-during-rebuild): EnableMutations() arms a write path.
// ApplyMutation() validates one op, applies it to a pool-private
// Sec-6-maintained HopiIndex (the rebuild source), and publishes
// {same snapshot, delta + op} — the op is visible to the very next
// work item any worker picks up, served through a DeltaOverlayBackend
// (delta_overlay.h: base-index-hit ∨ bounded bidirectional BFS).
// RebuildNow() / the RebuildDaemon then fold the delta back to zero:
// freeze a fresh snapshot from the maintenance index and publish it
// TOGETHER with the delta truncated through the frozen generation — one
// atomic publication, so no reader ever sees the new snapshot paired
// with already-absorbed delta ops (the swap-truncate ordering rule,
// docs/ARCHITECTURE.md). Delta generations are global ops-ever counts
// and survive truncation, so a response's (version, generation) pair
// always names one logical graph.
//
// Lifetime: the pool joins its workers in Shutdown() (also run by the
// destructor), draining already-queued work first; submissions after
// Shutdown are rejected with FailedPrecondition. All snapshots handed
// to the pool must simply stay un-mutated; the pool's shared_ptrs keep
// them alive as long as needed.
// Overload safety: the work queue can be bounded (queue_capacity) and
// fronted by an AdmissionController — hysteresis watermarks over the
// aggregate pending load (queued + executing). Submissions beyond
// either bound fail fast with a typed ResourceExhausted instead of
// queueing unboundedly; the network front-end (net/service.h) turns
// that into HTTP 429. Both bounds are off by default, preserving the
// PR-5 in-process behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/delta_overlay.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "hopi/index.h"
#include "query/similarity.h"
#include "util/lane_queue.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace hopi::engine {

struct EnginePoolOptions {
  /// Serving workers. 0 = std::thread::hardware_concurrency() (the
  /// thread-per-core default), clamped to at least 1.
  size_t num_threads = 0;

  /// How submissions pick a worker lane. Either policy is overridden
  /// by BatchRequest::lane_hint: a hinted batch always lands on lane
  /// (hint % workers), which is how keyspace-sharding clients (e.g.
  /// the scatter-gather router) actually get per-worker cache reuse —
  /// the policies below only spread *unhinted* traffic.
  enum class Dispatch {
    /// Cycle through workers — spreads a uniform stream evenly. The
    /// global cursor is shared by all clients, so without lane_hint
    /// two interleaved request streams do NOT each stick to a worker.
    kRoundRobin,
    /// Worker with the least pending work (queued items + the one it
    /// is executing), all-idle ties rotated round-robin — absorbs
    /// skewed request sizes at the price of colder caches.
    kLeastLoaded,
  };
  Dispatch dispatch = Dispatch::kLeastLoaded;

  /// Per-worker hot-label cache byte budget (QueryEngineOptions).
  size_t label_cache_bytes = 4 * 1024 * 1024;

  /// Ontology for ~tag path steps, copied into every worker engine.
  std::optional<query::TagSimilarity> similarity = std::nullopt;

  /// Per-lane bound on queued work items (LaneQueue capacity). A
  /// submission to a full lane fails with ResourceExhausted even when
  /// the admission controller admits — the hard backstop under a
  /// burst. 0 = unbounded (the pre-overload-control behavior).
  size_t queue_capacity = 0;

  /// Admission watermarks over the aggregate pending load (items
  /// queued across all lanes + items executing). At or above
  /// `shed_high_watermark` the pool starts shedding every submission
  /// with ResourceExhausted; it re-admits once the load drains to
  /// `shed_low_watermark` or below (hysteresis, so the gate does not
  /// flap at the boundary). high = 0 disables admission control;
  /// low defaults to high / 2 when left at 0.
  size_t shed_high_watermark = 0;
  size_t shed_low_watermark = 0;

  // ---- delta overlay (used only after EnableMutations) ----

  /// Hop budget per BFS side before a probe escalates to the unbounded
  /// recheck (DeltaOverlayOptions::hop_budget).
  size_t overlay_hop_budget = 8;
  /// Frontier size at which overlay BFS expansion goes parallel.
  size_t overlay_parallel_threshold = 128;
  /// Threads of the pool shared by all workers' overlay BFS frontiers
  /// (ThreadPool's re-entrancy guard arbitrates concurrent probes).
  size_t overlay_threads = 2;
  /// Hard cap on buffered delta ops: ApplyMutation sheds with
  /// ResourceExhausted at the cap until a rebuild truncates the delta.
  /// 0 = unbounded.
  size_t max_delta_ops = 0;
};

/// Hysteresis gate for overload shedding: trips at the high watermark,
/// re-admits at the low one. Thread-safe; races between concurrent
/// Admit calls can at worst admit/shed a handful of requests around a
/// transition, which is inherent to sampling a moving load anyway.
class AdmissionController {
 public:
  /// high = 0 disables the gate (everything admits). low is clamped to
  /// high - 1 so a trip always needs a real drain to clear.
  AdmissionController(size_t high, size_t low);

  /// Decides one submission given the current aggregate load.
  bool Admit(size_t load);

  /// Currently in the shedding regime?
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }

 private:
  size_t high_;
  size_t low_;
  std::atomic<bool> shedding_{false};
};

/// A Batch() answer plus its provenance.
struct PoolBatchResponse {
  BatchResponse batch;
  /// BackendSnapshot::version() of the snapshot this answer was
  /// computed against (matches exactly one published snapshot).
  uint64_t snapshot_version = 0;
  /// DeltaState::generation() of the delta this answer saw — together
  /// with snapshot_version this names the exact logical graph served.
  /// 0 until the first mutation.
  uint64_t delta_generation = 0;
  /// Worker that served it (its lane index).
  size_t worker = 0;
};

/// A Query() answer plus its provenance.
struct PoolPathResponse {
  Result<PathQueryResponse> result;
  uint64_t snapshot_version = 0;
  uint64_t delta_generation = 0;
  size_t worker = 0;
};

/// Outcome of one accepted mutation.
struct MutationReceipt {
  /// Delta generation after this op (global, monotonic): the first
  /// response generation at which the op is guaranteed visible.
  uint64_t generation = 0;
  /// Snapshot the delta currently overlays.
  uint64_t snapshot_version = 0;
  /// insert_document only: ids the new document received.
  collection::DocId doc = collection::kInvalidDoc;
  NodeId first_element = kInvalidNode;
  uint32_t num_elements = 0;
};

enum class RebuildMode {
  /// Freeze the Sec-6-maintained index as-is: cheap (a copy, no cover
  /// build) but inherits its degradation.
  kAbsorb,
  /// Re-run the full BuildIndex pipeline on a collection copy OUTSIDE
  /// the write lock, then catch up ops that landed meanwhile — resets
  /// degradation to ~1 at the cost of a background build.
  kFull,
};

/// Outcome of one rebuild.
struct RebuildReceipt {
  RebuildMode mode = RebuildMode::kAbsorb;
  /// Generation folded into the new snapshot (every op <= it).
  uint64_t generation = 0;
  /// Version of the snapshot published (unchanged if nothing to do).
  uint64_t snapshot_version = 0;
  /// Delta ops absorbed (and truncated).
  uint64_t absorbed_ops = 0;
  /// Wall time ApplyMutation writers were blocked by this rebuild (the
  /// mutation_mu_ critical sections; probes are never blocked).
  uint64_t writer_pause_us = 0;
};

/// Monotonic pool-wide counters. Aggregated from per-worker relaxed
/// atomics: each field never decreases across successive Stats() calls,
/// but one snapshot is not guaranteed to be mutually consistent across
/// fields (a batch may be counted in `batches` before its probe
/// counters land).
struct PoolStats {
  uint64_t batches = 0;        ///< Batch requests completed.
  uint64_t path_queries = 0;   ///< Path query requests completed.
  // Sums of the per-response BatchStats fields (engine.h documents
  // each route).
  uint64_t probes = 0;
  uint64_t unique_probes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t labels_borrowed = 0;
  uint64_t blocks_decoded = 0;
  uint64_t backend_probes = 0;
  uint64_t swaps = 0;  ///< Publications (Swap() + rebuild swap-ins).
  /// Worker engine rebuilds. Each worker's initial bind counts too, so
  /// the bound is (swaps + 1) × workers, not swaps × workers.
  uint64_t rebinds = 0;
  /// Submissions refused with ResourceExhausted (admission watermark
  /// or a full lane). Monotonic.
  uint64_t sheds = 0;
  // ---- mutation / overlay (all zero until EnableMutations) ----
  uint64_t mutations = 0;          ///< Ops accepted into the delta.
  uint64_t mutation_failures = 0;  ///< Ops rejected by validation.
  uint64_t rebuilds = 0;           ///< RebuildNow() calls that swapped.
  /// Overlay probe outcome counters (delta_overlay.h documents each).
  uint64_t overlay_probes = 0;
  uint64_t overlay_base_hits = 0;
  uint64_t overlay_bfs_fallbacks = 0;
  uint64_t overlay_budget_exhaustions = 0;
  uint64_t overlay_parallel_expansions = 0;
  /// Gauges (not monotonic): the load picture at the Stats() call.
  uint64_t queued = 0;    ///< Work items waiting across all lanes.
  uint64_t executing = 0; ///< Workers currently inside an item.
  bool shedding = false;  ///< Admission gate currently tripped.
  uint64_t delta_ops = 0;         ///< Un-absorbed delta ops right now.
  uint64_t delta_generation = 0;  ///< Global mutation count.
  /// DegradationFactor() of the maintenance index (1.0 when mutations
  /// are disabled) — what the RebuildDaemon triggers kFull on.
  double degradation = 1.0;
  uint64_t last_rebuild_pause_us = 0;  ///< Writer pause of the last rebuild.
  /// Version of the currently published snapshot. Not monotonic: Swap
  /// publishes whatever snapshot it is given, including an older one
  /// (rollback is a feature).
  uint64_t snapshot_version = 0;
};

class EnginePool {
 public:
  /// Starts the workers, all bound to `snapshot` (with an empty delta).
  explicit EnginePool(std::shared_ptr<const BackendSnapshot> snapshot,
                      EnginePoolOptions options = {});

  /// Shutdown() — drains queued work, joins workers.
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // ---- submission (any thread) ----

  /// Enqueues a batch; the future completes with the response and the
  /// serving snapshot's version. FailedPrecondition after Shutdown();
  /// ResourceExhausted when the admission gate or a bounded lane sheds
  /// (the request was NOT queued — retry later).
  Result<std::future<PoolBatchResponse>> SubmitBatch(BatchRequest request);

  /// Enqueues a path query; contract as SubmitBatch.
  Result<std::future<PoolPathResponse>> SubmitQuery(PathQueryRequest request);

  /// Callback forms for async callers (the network front-end): instead
  /// of a future, `on_done` runs ON THE SERVING WORKER right after the
  /// item completes — it must be cheap and non-blocking (hand the
  /// result off; a slow callback stalls that worker's lane) and must
  /// not throw (exceptions are swallowed). A worker-side failure
  /// (rebind allocation, backend fault) is delivered as an error
  /// Result. The returned Status only covers enqueueing: OK means
  /// `on_done` will eventually run exactly once; ResourceExhausted /
  /// FailedPrecondition mean it never will.
  Status SubmitBatch(BatchRequest request,
                     std::function<void(Result<PoolBatchResponse>)> on_done);
  Status SubmitQuery(PathQueryRequest request,
                     std::function<void(Result<PoolPathResponse>)> on_done);

  /// Synchronous conveniences: submit + wait.
  Result<PoolBatchResponse> Batch(BatchRequest request);
  Result<PoolPathResponse> Query(PathQueryRequest request);

  // ---- snapshot management (any thread) ----

  /// Publishes `snapshot` as the serving backend with an EMPTY delta.
  /// Returns immediately; workers rebind on their next work item while
  /// in-flight queries finish on the old state (see the header comment
  /// for the exact consistency contract). `snapshot` must be non-null.
  ///
  /// Swapping an arbitrary external snapshot would desynchronize the
  /// maintenance mirror, so Swap also DISABLES mutations (the delta
  /// generation is preserved; call EnableMutations again to re-arm the
  /// write path against the new snapshot). Rebuilds initiated through
  /// RebuildNow keep mutations enabled — they swap the maintenance
  /// index itself in.
  void Swap(std::shared_ptr<const BackendSnapshot> snapshot);

  /// The currently published snapshot.
  std::shared_ptr<const BackendSnapshot> snapshot() const;

  // ---- mutation (any thread; writers are serialized) ----

  /// Arms the write path. `source` must be the index the currently
  /// published snapshot was frozen from (same element/document counts);
  /// the pool deep-copies it into a private maintenance mirror — the
  /// Sec-6 id-allocation authority and rebuild source. The published
  /// delta must be empty (it always is right after construction, Swap,
  /// or a completed rebuild). InvalidArgument on a size mismatch.
  Status EnableMutations(const HopiIndex& source);
  bool mutations_enabled() const;

  /// Validates and applies one op: maintenance mirror first (Sec 6),
  /// then publishes {unchanged snapshot, delta + op}. Serialized with
  /// other writers; probes are never blocked. Typed failures:
  /// FailedPrecondition (mutations not enabled), InvalidArgument /
  /// NotFound (validation, delta untouched), ResourceExhausted (delta
  /// at max_delta_ops — retry after a rebuild).
  Result<MutationReceipt> ApplyMutation(const Mutation& mutation);

  /// Folds the delta into a fresh snapshot and publishes it together
  /// with the truncated delta (one atomic publication). kAbsorb
  /// freezes the maintenance index under the write lock; kFull runs
  /// BuildIndex on a collection copy outside the lock and replays ops
  /// that landed meanwhile. Rebuilds are serialized with each other;
  /// FailedPrecondition when mutations are not enabled.
  Result<RebuildReceipt> RebuildNow(RebuildMode mode);

  // ---- serving-state introspection (any thread) ----

  /// The published delta (never null; empty before the first mutation).
  std::shared_ptr<const DeltaState> delta() const;
  /// Elements / documents in base ∪ delta — the id space a request may
  /// probe (the wire layer validates against these).
  size_t ServingElementCount() const;
  size_t ServingDocumentCount() const;
  /// DegradationFactor() of the maintenance index; 1.0 when mutations
  /// are disabled. What the RebuildDaemon's kFull trigger watches.
  double MaintenanceDegradation() const;

  // ---- observability (any thread) ----

  PoolStats Stats() const;

  /// Per-worker label-cache counters (index = lane). Safe while the
  /// pool serves: cache stats are atomic and the engine object itself
  /// is pinned under the worker's rebind lock for the read.
  std::vector<LabelCache::Stats> WorkerCacheStats() const;

  /// Stops intake, serves everything already queued, joins the
  /// workers. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  /// One immutable published serving state. Snapshot and delta travel
  /// in a single shared_ptr so a reader can never observe the new
  /// snapshot with the old (pre-truncation) delta or vice versa.
  struct ServingState {
    std::shared_ptr<const BackendSnapshot> snapshot;
    std::shared_ptr<const DeltaState> delta;
  };

  struct BatchJob {
    BatchRequest request;
    // Exactly one completion channel: `on_done` when set, else the
    // promise.
    std::promise<PoolBatchResponse> promise;
    std::function<void(Result<PoolBatchResponse>)> on_done;
  };
  struct PathJob {
    PathQueryRequest request;
    std::promise<PoolPathResponse> promise;
    std::function<void(Result<PoolPathResponse>)> on_done;
  };
  struct WorkItem {
    // Exactly one engaged (a variant would also do; two optionals keep
    // the worker switch trivially readable).
    std::optional<BatchJob> batch;
    std::optional<PathJob> path;
  };

  /// Everything one serving thread owns. Only the owning worker touches
  /// `state`/`engine` — except that Stats readers pin the engine
  /// under `rebind_mu` while reading its cache counters.
  struct WorkerState {
    std::thread thread;
    std::mutex rebind_mu;
    std::shared_ptr<const ServingState> state;
    std::optional<QueryEngine> engine;
    /// 1 while the worker is executing an item (kLeastLoaded dispatch
    /// counts it as load; queue depth alone is blind to a worker stuck
    /// in a long batch).
    std::atomic<uint32_t> inflight{0};
    // Served-work counters (relaxed atomics; see PoolStats).
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> path_queries{0};
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> unique_probes{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> labels_borrowed{0};
    std::atomic<uint64_t> blocks_decoded{0};
    std::atomic<uint64_t> backend_probes{0};
    std::atomic<uint64_t> rebinds{0};
  };

  /// The pool-private Sec-6 mirror: a collection copy plus a HopiIndex
  /// maintained op-by-op. Guarded by mutation_mu_ (kFull's background
  /// build works on a further copy, outside the lock).
  struct MaintenanceState {
    std::unique_ptr<collection::Collection> collection;
    std::optional<HopiIndex> index;
  };

  /// `lane_hint` (from BatchRequest) pins the choice to hint % workers
  /// regardless of the dispatch policy; nullopt applies the policy.
  size_t PickLane(std::optional<uint64_t> lane_hint);
  void WorkerLoop(size_t lane);
  /// Rebinds worker `lane` to the published serving state if it
  /// changed; returns the state the next item will be served from.
  const ServingState& BindCurrentState(WorkerState* ws);
  Status CheckAcceptingOr(const char* what) const;
  /// Items queued across lanes + items executing — the load the
  /// admission watermarks are measured against.
  size_t PendingLoad() const;
  /// Shared submission tail: admission gate, lane pick, bounded push.
  Status Enqueue(WorkItem item, const char* what);

  /// The published serving state (never null).
  std::shared_ptr<const ServingState> State() const;
  /// Publishes {snapshot, delta}; bumps swaps_ when `count_swap`.
  void Publish(std::shared_ptr<const BackendSnapshot> snapshot,
               std::shared_ptr<const DeltaState> delta, bool count_swap);
  /// Replays one validated op onto the maintenance mirror (Sec 6).
  /// Caller holds mutation_mu_.
  Status ApplyToMaintenance(MaintenanceState* maintenance,
                            const Mutation& mutation);

  EnginePoolOptions options_;
  AdmissionController admission_;
  LaneQueue<WorkItem> queue_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::atomic<uint64_t> sheds_{0};

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ServingState> published_;  // guarded by snapshot_mu_

  /// Serializes writers (ApplyMutation, rebuild critical sections,
  /// Swap, EnableMutations) and guards maintenance_. Lock order:
  /// mutation_mu_ before snapshot_mu_; never the reverse.
  mutable std::mutex mutation_mu_;
  std::unique_ptr<MaintenanceState> maintenance_;  // null = mutations off
  bool maintenance_with_distance_ = false;
  /// Serializes whole rebuilds (kFull spends most of its time outside
  /// mutation_mu_; this keeps two rebuilds from racing each other).
  std::mutex rebuild_mu_;
  /// Shared by every worker's overlay backend for parallel BFS
  /// frontiers; created lazily by EnableMutations.
  std::unique_ptr<ThreadPool> overlay_pool_;
  OverlayCounters overlay_counters_;

  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> mutation_failures_{0};
  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> last_rebuild_pause_us_{0};

  std::atomic<uint64_t> swaps_{0};
  std::atomic<size_t> next_lane_{0};  // round-robin cursor
  std::atomic<bool> shutdown_{false};
  std::once_flag shutdown_once_;
};

/// Background rebuild policy: a thread that polls the pool and calls
/// RebuildNow when the delta grows past `max_delta_ops` (kAbsorb — fold
/// the buffered ops into a cheap frozen copy) or the maintenance index
/// degrades past `degradation_threshold` (kFull — re-run the build
/// pipeline and reset label density). Stop() (also the destructor)
/// joins the thread promptly.
class RebuildDaemon {
 public:
  struct Options {
    std::chrono::milliseconds poll_interval{50};
    /// Delta size that triggers a kAbsorb rebuild. 0 disables.
    size_t max_delta_ops = 1024;
    /// DegradationFactor() that triggers a kFull rebuild (the paper's
    /// rebuild-at-2x rule of thumb). 0 disables.
    double degradation_threshold = 2.0;
  };

  struct Stats {
    uint64_t polls = 0;
    uint64_t rebuilds = 0;       ///< Successful rebuilds, either mode.
    uint64_t full_rebuilds = 0;  ///< The kFull subset.
    uint64_t errors = 0;         ///< RebuildNow failures.
    uint64_t last_pause_us = 0;  ///< Writer pause of the last rebuild.
  };

  explicit RebuildDaemon(EnginePool* pool);  // default Options
  RebuildDaemon(EnginePool* pool, Options options);
  ~RebuildDaemon();
  RebuildDaemon(const RebuildDaemon&) = delete;
  RebuildDaemon& operator=(const RebuildDaemon&) = delete;

  /// Wakes the daemon for an immediate policy check (tests, admin).
  void Poke();
  void Stop();
  Stats stats() const;

 private:
  void Loop();

  EnginePool* pool_;
  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool poked_ = false;
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> full_rebuilds_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> last_pause_us_{0};
  std::thread thread_;
};

}  // namespace hopi::engine
