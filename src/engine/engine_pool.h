// EnginePool: thread-per-core serving over snapshot-swappable backends.
//
// The ROADMAP's async-serving item, concretely: N long-lived serving
// workers, each owning one QueryEngine (and therefore one private
// LabelCache — caches stay thread-local and lock-free), all bound to
// one shared immutable BackendSnapshot. Work (batched reachability,
// path queries) enters through an MPMC lane queue and completes through
// std::future; producers pick the lane round-robin (cache affinity) or
// least-loaded (balance).
//
// Snapshot swap is RCU-style: Swap() publishes a new
// shared_ptr<const BackendSnapshot> and returns immediately. Workers
// notice on their *next* work item, rebind (a fresh backend adapter +
// a fresh cold label cache; the tag index is snapshot-shared, so
// rebinding is O(1)), and the old snapshot is reclaimed by its last
// in-flight reference — queries already executing finish on the
// snapshot they started with, never a torn mix. Every response carries
// the version of the snapshot that served it.
//
// Consistency contract under Swap: each *response* is entirely computed
// against one snapshot (the one whose version it reports). Two
// requests submitted around a Swap may be served from different
// snapshots, and two workers may briefly serve different versions —
// this is eventual, per-item consistency, the standard RCU trade. A
// caller that needs a barrier can Swap() and then wait for one
// sentinel request per worker lane.
//
// Lifetime: the pool joins its workers in Shutdown() (also run by the
// destructor), draining already-queued work first; submissions after
// Shutdown are rejected with FailedPrecondition. All snapshots handed
// to the pool must simply stay un-mutated; the pool's shared_ptrs keep
// them alive as long as needed.
// Overload safety: the work queue can be bounded (queue_capacity) and
// fronted by an AdmissionController — hysteresis watermarks over the
// aggregate pending load (queued + executing). Submissions beyond
// either bound fail fast with a typed ResourceExhausted instead of
// queueing unboundedly; the network front-end (net/service.h) turns
// that into HTTP 429. Both bounds are off by default, preserving the
// PR-5 in-process behavior.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "query/similarity.h"
#include "util/lane_queue.h"
#include "util/result.h"

namespace hopi::engine {

struct EnginePoolOptions {
  /// Serving workers. 0 = std::thread::hardware_concurrency() (the
  /// thread-per-core default), clamped to at least 1.
  size_t num_threads = 0;

  /// How submissions pick a worker lane.
  enum class Dispatch {
    /// Cycle through workers — spreads a uniform stream and maximizes
    /// per-worker cache reuse for clients that shard their keyspace.
    kRoundRobin,
    /// Worker with the least pending work (queued items + the one it
    /// is executing), all-idle ties rotated round-robin — absorbs
    /// skewed request sizes at the price of colder caches.
    kLeastLoaded,
  };
  Dispatch dispatch = Dispatch::kLeastLoaded;

  /// Per-worker hot-label cache byte budget (QueryEngineOptions).
  size_t label_cache_bytes = 4 * 1024 * 1024;

  /// Ontology for ~tag path steps, copied into every worker engine.
  std::optional<query::TagSimilarity> similarity = std::nullopt;

  /// Per-lane bound on queued work items (LaneQueue capacity). A
  /// submission to a full lane fails with ResourceExhausted even when
  /// the admission controller admits — the hard backstop under a
  /// burst. 0 = unbounded (the pre-overload-control behavior).
  size_t queue_capacity = 0;

  /// Admission watermarks over the aggregate pending load (items
  /// queued across all lanes + items executing). At or above
  /// `shed_high_watermark` the pool starts shedding every submission
  /// with ResourceExhausted; it re-admits once the load drains to
  /// `shed_low_watermark` or below (hysteresis, so the gate does not
  /// flap at the boundary). high = 0 disables admission control;
  /// low defaults to high / 2 when left at 0.
  size_t shed_high_watermark = 0;
  size_t shed_low_watermark = 0;
};

/// Hysteresis gate for overload shedding: trips at the high watermark,
/// re-admits at the low one. Thread-safe; races between concurrent
/// Admit calls can at worst admit/shed a handful of requests around a
/// transition, which is inherent to sampling a moving load anyway.
class AdmissionController {
 public:
  /// high = 0 disables the gate (everything admits). low is clamped to
  /// high - 1 so a trip always needs a real drain to clear.
  AdmissionController(size_t high, size_t low);

  /// Decides one submission given the current aggregate load.
  bool Admit(size_t load);

  /// Currently in the shedding regime?
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }

 private:
  size_t high_;
  size_t low_;
  std::atomic<bool> shedding_{false};
};

/// A Batch() answer plus its provenance.
struct PoolBatchResponse {
  BatchResponse batch;
  /// BackendSnapshot::version() of the snapshot this answer was
  /// computed against (matches exactly one published snapshot).
  uint64_t snapshot_version = 0;
  /// Worker that served it (its lane index).
  size_t worker = 0;
};

/// A Query() answer plus its provenance.
struct PoolPathResponse {
  Result<PathQueryResponse> result;
  uint64_t snapshot_version = 0;
  size_t worker = 0;
};

/// Monotonic pool-wide counters. Aggregated from per-worker relaxed
/// atomics: each field never decreases across successive Stats() calls,
/// but one snapshot is not guaranteed to be mutually consistent across
/// fields (a batch may be counted in `batches` before its probe
/// counters land).
struct PoolStats {
  uint64_t batches = 0;        ///< Batch requests completed.
  uint64_t path_queries = 0;   ///< Path query requests completed.
  // Sums of the per-response BatchStats fields (engine.h documents
  // each route).
  uint64_t probes = 0;
  uint64_t unique_probes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t labels_borrowed = 0;
  uint64_t blocks_decoded = 0;
  uint64_t backend_probes = 0;
  uint64_t swaps = 0;  ///< Swap() calls accepted.
  /// Worker engine rebuilds. Each worker's initial bind counts too, so
  /// the bound is (swaps + 1) × workers, not swaps × workers.
  uint64_t rebinds = 0;
  /// Submissions refused with ResourceExhausted (admission watermark
  /// or a full lane). Monotonic.
  uint64_t sheds = 0;
  /// Gauges (not monotonic): the load picture at the Stats() call.
  uint64_t queued = 0;    ///< Work items waiting across all lanes.
  uint64_t executing = 0; ///< Workers currently inside an item.
  bool shedding = false;  ///< Admission gate currently tripped.
  /// Version of the currently published snapshot. The one field that
  /// is not monotonic: Swap publishes whatever snapshot it is given,
  /// including an older one (rollback is a feature).
  uint64_t snapshot_version = 0;
};

class EnginePool {
 public:
  /// Starts the workers, all bound to `snapshot`.
  explicit EnginePool(std::shared_ptr<const BackendSnapshot> snapshot,
                      EnginePoolOptions options = {});

  /// Shutdown() — drains queued work, joins workers.
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // ---- submission (any thread) ----

  /// Enqueues a batch; the future completes with the response and the
  /// serving snapshot's version. FailedPrecondition after Shutdown();
  /// ResourceExhausted when the admission gate or a bounded lane sheds
  /// (the request was NOT queued — retry later).
  Result<std::future<PoolBatchResponse>> SubmitBatch(BatchRequest request);

  /// Enqueues a path query; contract as SubmitBatch.
  Result<std::future<PoolPathResponse>> SubmitQuery(PathQueryRequest request);

  /// Callback forms for async callers (the network front-end): instead
  /// of a future, `on_done` runs ON THE SERVING WORKER right after the
  /// item completes — it must be cheap and non-blocking (hand the
  /// result off; a slow callback stalls that worker's lane) and must
  /// not throw (exceptions are swallowed). A worker-side failure
  /// (rebind allocation, backend fault) is delivered as an error
  /// Result. The returned Status only covers enqueueing: OK means
  /// `on_done` will eventually run exactly once; ResourceExhausted /
  /// FailedPrecondition mean it never will.
  Status SubmitBatch(BatchRequest request,
                     std::function<void(Result<PoolBatchResponse>)> on_done);
  Status SubmitQuery(PathQueryRequest request,
                     std::function<void(Result<PoolPathResponse>)> on_done);

  /// Synchronous conveniences: submit + wait.
  Result<PoolBatchResponse> Batch(BatchRequest request);
  Result<PoolPathResponse> Query(PathQueryRequest request);

  // ---- snapshot management (any thread) ----

  /// Publishes `snapshot` as the serving backend. Returns immediately;
  /// workers rebind on their next work item while in-flight queries
  /// finish on the old snapshot (see the header comment for the exact
  /// consistency contract). `snapshot` must be non-null.
  void Swap(std::shared_ptr<const BackendSnapshot> snapshot);

  /// The currently published snapshot.
  std::shared_ptr<const BackendSnapshot> snapshot() const;

  // ---- observability (any thread) ----

  PoolStats Stats() const;

  /// Per-worker label-cache counters (index = lane). Safe while the
  /// pool serves: cache stats are atomic and the engine object itself
  /// is pinned under the worker's rebind lock for the read.
  std::vector<LabelCache::Stats> WorkerCacheStats() const;

  /// Stops intake, serves everything already queued, joins the
  /// workers. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct BatchJob {
    BatchRequest request;
    // Exactly one completion channel: `on_done` when set, else the
    // promise.
    std::promise<PoolBatchResponse> promise;
    std::function<void(Result<PoolBatchResponse>)> on_done;
  };
  struct PathJob {
    PathQueryRequest request;
    std::promise<PoolPathResponse> promise;
    std::function<void(Result<PoolPathResponse>)> on_done;
  };
  struct WorkItem {
    // Exactly one engaged (a variant would also do; two optionals keep
    // the worker switch trivially readable).
    std::optional<BatchJob> batch;
    std::optional<PathJob> path;
  };

  /// Everything one serving thread owns. Only the owning worker touches
  /// `snapshot`/`engine` — except that Stats readers pin the engine
  /// under `rebind_mu` while reading its cache counters.
  struct WorkerState {
    std::thread thread;
    std::mutex rebind_mu;
    std::shared_ptr<const BackendSnapshot> snapshot;
    std::optional<QueryEngine> engine;
    /// 1 while the worker is executing an item (kLeastLoaded dispatch
    /// counts it as load; queue depth alone is blind to a worker stuck
    /// in a long batch).
    std::atomic<uint32_t> inflight{0};
    // Served-work counters (relaxed atomics; see PoolStats).
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> path_queries{0};
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> unique_probes{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> labels_borrowed{0};
    std::atomic<uint64_t> blocks_decoded{0};
    std::atomic<uint64_t> backend_probes{0};
    std::atomic<uint64_t> rebinds{0};
  };

  size_t PickLane();
  void WorkerLoop(size_t lane);
  /// Rebinds worker `lane` to the published snapshot if it changed;
  /// returns the snapshot the next item will be served from.
  const BackendSnapshot& BindCurrentSnapshot(WorkerState* ws);
  Status CheckAcceptingOr(const char* what) const;
  /// Items queued across lanes + items executing — the load the
  /// admission watermarks are measured against.
  size_t PendingLoad() const;
  /// Shared submission tail: admission gate, lane pick, bounded push.
  Status Enqueue(WorkItem item, const char* what);

  EnginePoolOptions options_;
  AdmissionController admission_;
  LaneQueue<WorkItem> queue_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::atomic<uint64_t> sheds_{0};

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const BackendSnapshot> published_;  // guarded by snapshot_mu_

  std::atomic<uint64_t> swaps_{0};
  std::atomic<size_t> next_lane_{0};  // round-robin cursor
  std::atomic<bool> shutdown_{false};
  std::once_flag shutdown_once_;
};

}  // namespace hopi::engine
