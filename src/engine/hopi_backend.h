// HopiIndexBackend: the in-memory 2-hop cover as a ReachabilityBackend.
//
// Split out of engine/backends.h so the query module's deprecated
// HopiIndex shims can construct it without pulling the storage and
// baseline headers into their dependency surface.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "engine/backend.h"
#include "hopi/index.h"

namespace hopi::engine {

/// Adapter over the in-memory HopiIndex (2-hop cover labels). Labels
/// are borrowed straight from the cover — no copies, no cache needed.
/// Safe to share across serving threads only while no maintenance
/// operation mutates the index; for live maintenance, serve a
/// BackendSnapshot::Freeze copy instead (see engine/snapshot.h).
class HopiIndexBackend final : public ReachabilityBackend {
 public:
  explicit HopiIndexBackend(const HopiIndex& index) : index_(&index) {}

  std::string_view Name() const override { return "hopi"; }
  bool with_distance() const override { return index_->with_distance(); }

  bool IsReachable(NodeId u, NodeId v) const override {
    return index_->IsReachable(u, v);
  }
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    return index_->Distance(u, v);
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return index_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return index_->Ancestors(u);
  }

  bool HasLabels() const override { return true; }
  Label OutLabel(NodeId u) const override {
    LabelView view = *BorrowOutLabel(u);
    return Label(view.begin(), view.end());
  }
  Label InLabel(NodeId v) const override {
    LabelView view = *BorrowInLabel(v);
    return Label(view.begin(), view.end());
  }
  std::optional<LabelView> BorrowOutLabel(NodeId u) const override {
    const twohop::TwoHopCover& cover = index_->cover();
    return u < cover.NumNodes() ? LabelView(cover.Out(u)) : LabelView();
  }
  std::optional<LabelView> BorrowInLabel(NodeId v) const override {
    const twohop::TwoHopCover& cover = index_->cover();
    return v < cover.NumNodes() ? LabelView(cover.In(v)) : LabelView();
  }
  // The cover keeps packed SoA mirrors with real summaries — hand the
  // kernels those instead of the strided AoS adaptation.
  std::optional<twohop::JoinView> BorrowOutJoin(NodeId u) const override {
    const twohop::TwoHopCover& cover = index_->cover();
    return u < cover.NumNodes() ? cover.OutJoin(u) : twohop::JoinView{};
  }
  std::optional<twohop::JoinView> BorrowInJoin(NodeId v) const override {
    const twohop::TwoHopCover& cover = index_->cover();
    return v < cover.NumNodes() ? cover.InJoin(v) : twohop::JoinView{};
  }

 private:
  const HopiIndex* index_;
};

}  // namespace hopi::engine
