#include "engine/engine.h"

#include <unordered_map>
#include <utility>

#include "engine/backends.h"

namespace hopi::engine {

namespace {

uint64_t PairKey(const NodePair& p) {
  return (static_cast<uint64_t>(p.first) << 32) | p.second;
}

}  // namespace

QueryEngine::QueryEngine(const collection::Collection& collection,
                         std::unique_ptr<ReachabilityBackend> backend,
                         QueryEngineOptions options)
    : collection_(&collection),
      backend_(std::move(backend)),
      tags_(options.shared_tags
                ? std::move(options.shared_tags)
                : std::make_shared<query::TagIndex>(collection)),
      similarity_(std::move(options.similarity)),
      cache_(options.label_cache_capacity) {}

QueryEngine QueryEngine::ForIndex(const HopiIndex& index,
                                  QueryEngineOptions options) {
  return QueryEngine(*index.collection(),
                     std::make_unique<HopiIndexBackend>(index),
                     std::move(options));
}

QueryEngine QueryEngine::ForStore(const collection::Collection& collection,
                                  const storage::LinLoutStore& store,
                                  QueryEngineOptions options) {
  return QueryEngine(collection, std::make_unique<LinLoutBackend>(store),
                     std::move(options));
}

QueryEngine QueryEngine::ForMappedStore(
    const collection::Collection& collection,
    const storage::MappedLinLoutStore& store, QueryEngineOptions options) {
  return QueryEngine(collection,
                     std::make_unique<MappedLinLoutBackend>(store),
                     std::move(options));
}

QueryEngine QueryEngine::ForClosure(const collection::Collection& collection,
                                    const TransitiveClosureIndex& closure,
                                    bool with_distance,
                                    QueryEngineOptions options) {
  return QueryEngine(collection,
                     std::make_unique<ClosureBackend>(closure, with_distance),
                     std::move(options));
}

ReachabilityResponse QueryEngine::Reachability(
    const ReachabilityRequest& request) const {
  ReachabilityResponse response;
  response.reachable = backend_->IsReachable(request.source, request.target);
  if (request.want_distance && response.reachable) {
    response.distance = backend_->Distance(request.source, request.target);
  }
  return response;
}

LabelView QueryEngine::FetchLabel(LabelCache::Side side, NodeId node,
                                  BatchStats* stats) const {
  bool out = side == LabelCache::Side::kOut;
  // Borrow route: label storage the backend already owns (in-memory
  // covers, mmapped file images) is lent as a span — zero copies.
  if (std::optional<LabelView> borrowed = out ? backend_->BorrowOutLabel(node)
                                              : backend_->BorrowInLabel(node)) {
    ++stats->labels_borrowed;
    return *borrowed;
  }
  // Copy route, served through the LRU cache.
  if (const Label* hit = cache_.Get(side, node)) {
    ++stats->cache_hits;
    return LabelView(*hit);
  }
  ++stats->cache_misses;
  Label label = out ? backend_->OutLabel(node) : backend_->InLabel(node);
  return LabelView(*cache_.Put(side, node, std::move(label)));
}

BatchResponse QueryEngine::Batch(const BatchRequest& request) const {
  BatchResponse response;
  response.stats.probes = request.pairs.size();

  // Dedup repeated (u, v) probes: answer each distinct pair once, then
  // scatter the answers back to every occurrence.
  std::unordered_map<uint64_t, size_t> slot_of;
  slot_of.reserve(request.pairs.size());
  std::vector<NodePair> unique;
  std::vector<size_t> slot(request.pairs.size());
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    auto [it, inserted] =
        slot_of.try_emplace(PairKey(request.pairs[i]), unique.size());
    if (inserted) unique.push_back(request.pairs[i]);
    slot[i] = it->second;
  }
  response.stats.unique_probes = unique.size();

  std::vector<bool> reachable(unique.size());
  std::vector<std::optional<uint32_t>> distance(
      request.want_distances ? unique.size() : 0);

  if (backend_->HasLabels()) {
    for (size_t k = 0; k < unique.size(); ++k) {
      auto [u, v] = unique[k];
      if (u == v) {
        reachable[k] = true;
        if (request.want_distances) distance[k] = 0;
        continue;
      }
      LabelView lout = FetchLabel(LabelCache::Side::kOut, u, &response.stats);
      LabelView lin = FetchLabel(LabelCache::Side::kIn, v, &response.stats);
      twohop::LabelJoinResult join =
          twohop::JoinLabelRanges(u, v, lout.data(), lout.size(), lin.data(),
                                  lin.size(), request.want_distances);
      reachable[k] = join.connected;
      if (request.want_distances) distance[k] = join.distance;
    }
  } else {
    response.stats.backend_probes = unique.size();
    reachable = backend_->TestConnections(unique);
    if (request.want_distances) {
      for (size_t k = 0; k < unique.size(); ++k) {
        if (reachable[k]) {
          distance[k] = backend_->Distance(unique[k].first, unique[k].second);
        }
      }
    }
  }

  response.reachable.resize(request.pairs.size());
  if (request.want_distances) {
    response.distances.resize(request.pairs.size());
  }
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    response.reachable[i] = reachable[slot[i]];
    if (request.want_distances) response.distances[i] = distance[slot[i]];
  }
  return response;
}

Result<PathQueryResponse> QueryEngine::Query(
    const PathQueryRequest& request) const {
  HOPI_ASSIGN_OR_RETURN(query::PathExpression expr,
                        query::PathExpression::Parse(request.expression));
  PathQueryResponse response;
  if (request.count_only) {
    HOPI_ASSIGN_OR_RETURN(
        response.count,
        query::CountPathResults(expr, *backend_, *collection_, *tags_));
    return response;
  }
  query::PathQueryOptions options;
  options.max_matches = request.max_matches;
  options.max_step_distance = request.max_step_distance;
  options.min_tag_similarity = request.min_tag_similarity;
  if (similarity_) options.similarity = &*similarity_;
  HOPI_ASSIGN_OR_RETURN(
      response.matches,
      query::EvaluatePath(expr, *backend_, *collection_, *tags_, options));
  response.count = response.matches.size();
  return response;
}

}  // namespace hopi::engine
