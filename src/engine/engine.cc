#include "engine/engine.h"

#include <chrono>
#include <memory>
#include <unordered_map>
#include <utility>

#include "engine/backends.h"
#include "twohop/join_kernel.h"

namespace hopi::engine {

namespace {

uint64_t PairKey(const NodePair& p) {
  return (static_cast<uint64_t>(p.first) << 32) | p.second;
}

}  // namespace

QueryEngine::QueryEngine(const collection::Collection& collection,
                         std::unique_ptr<ReachabilityBackend> backend,
                         QueryEngineOptions options)
    : collection_(&collection),
      backend_(std::move(backend)),
      tags_(options.shared_tags
                ? std::move(options.shared_tags)
                : std::make_shared<query::TagIndex>(collection)),
      similarity_(std::move(options.similarity)),
      cache_(options.label_cache_bytes) {}

QueryEngine QueryEngine::ForIndex(const HopiIndex& index,
                                  QueryEngineOptions options) {
  return QueryEngine(*index.collection(),
                     std::make_unique<HopiIndexBackend>(index),
                     std::move(options));
}

QueryEngine QueryEngine::ForStore(const collection::Collection& collection,
                                  const storage::LinLoutStore& store,
                                  QueryEngineOptions options) {
  return QueryEngine(collection, std::make_unique<LinLoutBackend>(store),
                     std::move(options));
}

QueryEngine QueryEngine::ForMappedStore(
    const collection::Collection& collection,
    const storage::MappedLinLoutStore& store, QueryEngineOptions options) {
  return QueryEngine(collection,
                     std::make_unique<MappedLinLoutBackend>(store),
                     std::move(options));
}

QueryEngine QueryEngine::ForClosure(const collection::Collection& collection,
                                    const TransitiveClosureIndex& closure,
                                    bool with_distance,
                                    QueryEngineOptions options) {
  return QueryEngine(collection,
                     std::make_unique<ClosureBackend>(closure, with_distance),
                     std::move(options));
}

ReachabilityResponse QueryEngine::Reachability(
    const ReachabilityRequest& request) const {
  ReachabilityResponse response;
  response.reachable = backend_->IsReachable(request.source, request.target);
  if (request.want_distance && response.reachable) {
    response.distance = backend_->Distance(request.source, request.target);
  }
  return response;
}

PinnedJoin QueryEngine::FetchJoinLabel(LabelCache::Side side, NodeId node,
                                       BatchStats* stats,
                                       Status* error) const {
  bool out = side == LabelCache::Side::kOut;
  // Row-memo fast path: once a node's row has been located inside a
  // decoded block, warm probes skip every directory search — one hash
  // find, one weak-pin upgrade, O(1) row. This is what keeps the v4
  // warm path competitive with the raw v3 borrow route.
  uint64_t row_key = LabelCache::KeyFor(side, node);
  uint32_t memo_row = 0;
  if (LabelBlock block = cache_.GetRow(row_key, &memo_row)) {
    ++stats->cache_hits;
    twohop::JoinView view = block->JoinRow(memo_row);
    return {view, std::move(block)};
  }
  // Block route: compressed storage names the block holding the row;
  // the cache serves the decoded block, pinned for the caller. Checked
  // before the borrow route because for compressed backends both
  // answers come from the same directory search — asking "can I
  // borrow?" first would pay that search twice per fetch.
  if (std::optional<uint64_t> handle =
          out ? backend_->OutLabelBlock(node) : backend_->InLabelBlock(node)) {
    uint64_t key = LabelCache::BlockKeyFor(*handle);
    LabelBlock block = cache_.Get(key);
    if (block) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
      auto start = std::chrono::steady_clock::now();
      Result<LabelBlock> decoded = backend_->DecodeLabelBlock(*handle);
      if (!decoded.ok()) {
        if (error->ok()) *error = decoded.status();
        return {twohop::JoinView{}, nullptr};
      }
      cache_.RecordDecode(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      ++stats->blocks_decoded;
      block = cache_.Put(key, std::move(*decoded));
    }
    int64_t row = block->RowIndexFor(node);
    if (row < 0) return {twohop::JoinView{}, std::move(block)};
    cache_.MemoRow(row_key, block, static_cast<uint32_t>(row));
    twohop::JoinView view = block->JoinRow(static_cast<size_t>(row));
    return {view, std::move(block)};
  }
  // Borrow route: label storage the backend already owns (in-memory
  // covers, raw mmapped file images) is lent as a kernel view — zero
  // copies, no pin needed (backend-lifetime storage). For compressed
  // backends this only serves rows with no block: the empty ones.
  if (std::optional<twohop::JoinView> borrowed =
          out ? backend_->BorrowOutJoin(node) : backend_->BorrowInJoin(node)) {
    ++stats->labels_borrowed;
    return {*borrowed, nullptr};
  }
  // Copy route: the backend materializes one label; the engine wraps
  // it as a one-row block so the byte-budgeted cache has one currency.
  uint64_t key = LabelCache::KeyFor(side, node);
  if (LabelBlock hit = cache_.Get(key)) {
    ++stats->cache_hits;
    twohop::JoinView view = hit->JoinRow(0);
    return {view, std::move(hit)};
  }
  ++stats->cache_misses;
  auto wrapped = std::make_shared<storage::DecodedBlock>();
  wrapped->entries = out ? backend_->OutLabel(node) : backend_->InLabel(node);
  wrapped->row_keys = {node};
  wrapped->row_begin = {0, static_cast<uint32_t>(wrapped->entries.size())};
  wrapped->BuildJoinMirrors();
  LabelBlock block = cache_.Put(key, std::move(wrapped));
  twohop::JoinView view = block->JoinRow(0);
  return {view, std::move(block)};
}

BatchResponse QueryEngine::Batch(const BatchRequest& request) const {
  BatchResponse response;
  response.stats.probes = request.pairs.size();

  // Dedup repeated (u, v) probes: answer each distinct pair once, then
  // scatter the answers back to every occurrence.
  std::unordered_map<uint64_t, size_t> slot_of;
  slot_of.reserve(request.pairs.size());
  std::vector<NodePair> unique;
  std::vector<size_t> slot(request.pairs.size());
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    auto [it, inserted] =
        slot_of.try_emplace(PairKey(request.pairs[i]), unique.size());
    if (inserted) unique.push_back(request.pairs[i]);
    slot[i] = it->second;
  }
  response.stats.unique_probes = unique.size();

  std::vector<bool> reachable(unique.size());
  std::vector<std::optional<uint32_t>> distance(
      request.want_distances ? unique.size() : 0);

  if (backend_->HasLabels()) {
    for (size_t k = 0; k < unique.size(); ++k) {
      auto [u, v] = unique[k];
      if (u == v) {
        reachable[k] = true;
        if (request.want_distances) distance[k] = 0;
        continue;
      }
      PinnedJoin lout = FetchJoinLabel(LabelCache::Side::kOut, u,
                                       &response.stats, &response.error);
      PinnedJoin lin = FetchJoinLabel(LabelCache::Side::kIn, v,
                                      &response.stats, &response.error);
      twohop::LabelJoinResult join = twohop::JoinViews(
          u, v, lout.view, lin.view, request.want_distances);
      reachable[k] = join.connected;
      if (request.want_distances) distance[k] = join.distance;
    }
  } else {
    response.stats.backend_probes = unique.size();
    reachable = backend_->TestConnections(unique);
    if (request.want_distances) {
      for (size_t k = 0; k < unique.size(); ++k) {
        if (reachable[k]) {
          distance[k] = backend_->Distance(unique[k].first, unique[k].second);
        }
      }
    }
  }

  response.reachable.resize(request.pairs.size());
  if (request.want_distances) {
    response.distances.resize(request.pairs.size());
  }
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    response.reachable[i] = reachable[slot[i]];
    if (request.want_distances) response.distances[i] = distance[slot[i]];
  }
  return response;
}

Result<PathQueryResponse> QueryEngine::Query(
    const PathQueryRequest& request) const {
  HOPI_ASSIGN_OR_RETURN(query::PathExpression expr,
                        query::PathExpression::Parse(request.expression));
  PathQueryResponse response;
  if (request.count_only) {
    HOPI_ASSIGN_OR_RETURN(
        response.count,
        query::CountPathResults(expr, *backend_, *collection_, *tags_));
    return response;
  }
  query::PathQueryOptions options;
  options.max_matches = request.max_matches;
  options.max_step_distance = request.max_step_distance;
  options.min_tag_similarity = request.min_tag_similarity;
  if (similarity_) options.similarity = &*similarity_;
  HOPI_ASSIGN_OR_RETURN(
      response.matches,
      query::EvaluatePath(expr, *backend_, *collection_, *tags_, options));
  response.count = response.matches.size();
  return response;
}

}  // namespace hopi::engine
