// Bounded LRU cache of hot LIN/LOUT label sets (ROADMAP: "cache hot
// LIN/LOUT sets behind the storage layer").
//
// The QueryEngine batch path keys entries by (side, node): one entry per
// cached LOUT(u) or LIN(v) label set. Repeated probes against the same
// node — the common case in reachability joins, where one source is
// tested against many targets — then skip the backend's label fetch
// (a binary search over the table runs for LinLoutStore, a row copy for
// the in-memory cover).
//
// Not thread-safe; callers serialize access (the facade documents this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "engine/backend.h"

namespace hopi::engine {

class LabelCache {
 public:
  /// Which label set of a node an entry caches.
  enum class Side : uint8_t { kOut = 0, kIn = 1 };

  /// `capacity` is the maximum number of cached label sets. Clamped to
  /// at least 2 so a probe's LOUT fetch can never evict the LIN fetch of
  /// the same pair (and vice versa).
  explicit LabelCache(size_t capacity);

  static uint64_t KeyFor(Side side, NodeId node) {
    return (static_cast<uint64_t>(node) << 1) |
           static_cast<uint64_t>(side);
  }

  /// Returns the cached label and marks it most-recently-used, or
  /// nullptr on a miss. The pointer stays valid until the entry is
  /// evicted (i.e. at least until `capacity - 1` further insertions).
  const Label* Get(Side side, NodeId node);

  /// Inserts (or overwrites) an entry, evicting the least-recently-used
  /// one when full. Returns a pointer to the stored label.
  const Label* Put(Side side, NodeId node, Label label);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

  // ---- lifetime counters (across all batches served) ----
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t key;
    Label label;
  };

  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hopi::engine
