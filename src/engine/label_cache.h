// Bounded LRU cache of hot LIN/LOUT label sets (ROADMAP: "cache hot
// LIN/LOUT sets behind the storage layer").
//
// The QueryEngine batch path keys entries by (side, node): one entry per
// cached LOUT(u) or LIN(v) label set. Repeated probes against the same
// node — the common case in reachability joins, where one source is
// tested against many targets — then skip the backend's label fetch
// (a binary search over the table runs for LinLoutStore, a row copy for
// the in-memory cover).
//
// Ownership rule (one writer, many stats readers): exactly one thread —
// the engine that owns the cache — may call the structural operations
// Get/Put/Clear, and they must never run concurrently with each other
// or with a move. The *statistics* accessors (hits/misses/evictions/
// size/capacity and StatsSnapshot) are safe to call from any thread at
// any time: the counters are relaxed atomics, so a monitoring thread
// (engine::EnginePool aggregating per-worker caches, a stats endpoint
// holding `const QueryEngine&`) can read them while the owner serves a
// batch. Individual counters are monotonic; a multi-field snapshot is
// not guaranteed to be mutually consistent (hits may already include a
// probe whose eviction is not yet counted).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "engine/backend.h"

namespace hopi::engine {

class LabelCache {
 public:
  /// Which label set of a node an entry caches.
  enum class Side : uint8_t { kOut = 0, kIn = 1 };

  /// One relaxed read of every counter (see StatsSnapshot).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;

    /// Fraction of lookups served from the cache (0 when idle).
    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  /// `capacity` is the maximum number of cached label sets. Clamped to
  /// at least 2 so a probe's LOUT fetch can never evict the LIN fetch of
  /// the same pair (and vice versa).
  explicit LabelCache(size_t capacity);

  /// Moving is a structural operation: it must be serialized with every
  /// other access, stats reads included (the counters move too).
  LabelCache(LabelCache&& other) noexcept;
  LabelCache& operator=(LabelCache&&) = delete;
  LabelCache(const LabelCache&) = delete;
  LabelCache& operator=(const LabelCache&) = delete;

  static uint64_t KeyFor(Side side, NodeId node) {
    return (static_cast<uint64_t>(node) << 1) |
           static_cast<uint64_t>(side);
  }

  /// Returns the cached label and marks it most-recently-used, or
  /// nullptr on a miss. The pointer stays valid until the entry is
  /// evicted (i.e. at least until `capacity - 1` further insertions).
  /// Owner-thread only.
  const Label* Get(Side side, NodeId node);

  /// Inserts (or overwrites) an entry, evicting the least-recently-used
  /// one when full. Returns a pointer to the stored label.
  /// Owner-thread only.
  const Label* Put(Side side, NodeId node, Label label);

  /// Owner-thread only.
  void Clear();

  /// Current entry count. Safe from any thread (atomic mirror of the
  /// map size, maintained by the structural operations).
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

  // ---- lifetime counters (across all batches served) ----
  //
  // Safe from any thread; see the ownership rule above.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// All counters in one struct (each read individually relaxed).
  Stats StatsSnapshot() const {
    return Stats{hits(), misses(), evictions(), size(), capacity()};
  }

 private:
  struct Entry {
    uint64_t key;
    Label label;
  };

  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  size_t capacity_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace hopi::engine
