// Byte-budgeted LRU cache of decoded label blocks (ROADMAP: "cache hot
// LIN/LOUT sets behind the storage layer", extended to block-
// compressed v4 stores).
//
// The cache's unit is a shared_ptr<const DecodedBlock>. Two kinds of
// entries share the budget:
//
//   block entries — a whole decoded v4 block (many rows), keyed by the
//     backend's block handle. One cold probe pays one block decode;
//     every other row in the block is then a hit.
//   label entries — a single backend-materialized label wrapped as a
//     one-row block (the classic copy route), keyed by (side, node).
//
// Ownership/pinning rule: Get/Put hand out shared_ptr pins. Eviction
// removes the CACHE's reference only — any batch still joining rows of
// an evicted block keeps it alive through its pin, so there is no
// "view invalidated by eviction" hazard and no minimum-capacity clamp.
// Callers must hold the pin (engine::PinnedLabel) for as long as they
// read the view; a raw span must never outlive its pin.
//
// Budgeting is by DecodedBlock::ApproxBytes(), charged at insert.
// After an insert pushes bytes_resident over the budget, least-
// recently-used entries are dropped until it fits again (possibly
// including the entry just inserted — a zero budget is a legal
// "cache nothing" configuration; correctness never depends on
// residency, only speed does).
//
// Recency is tracked with a per-entry access generation instead of an
// intrusive list: a hit is a hash find plus one counter store, and
// eviction — the rare path, always behind a block decode — scans for
// the minimum generation. Exact LRU either way; the bookkeeping cost
// sits on the miss path where it is invisible next to the decode.
// One deliberate exception: row-memo hits (GetRow) skip the recency
// bump — touching the block entry would cost a second hash find on
// the hottest path. Under eviction pressure a block served only
// through the memo can age out; its memo entries then expire and the
// next touch re-decodes and re-ranks it. Approximate recency, exact
// accounting.
//
// Threading (one writer, many stats readers): exactly one thread — the
// engine that owns the cache — may call the structural operations
// Get/Put/Clear/RecordDecode, never concurrently with each other or a
// move. The statistics accessors (and StatsSnapshot) are relaxed
// atomics, safe from any thread at any time; individual counters are
// monotonic but a multi-field snapshot is not guaranteed mutually
// consistent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "engine/backend.h"

namespace hopi::engine {

class LabelCache {
 public:
  /// Which label set of a node a single-label entry caches.
  enum class Side : uint8_t { kOut = 0, kIn = 1 };

  /// One relaxed read of every counter (see StatsSnapshot).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Bytes currently held by cached blocks (ApproxBytes sum).
    size_t bytes_resident = 0;
    /// The configured budget bytes_resident is kept under.
    size_t byte_budget = 0;
    /// Lifetime count of block decodes recorded by the owning engine
    /// (block-route cache misses).
    uint64_t blocks_decoded = 0;
    /// Lifetime nanoseconds spent in those decodes.
    uint64_t decode_nanos = 0;

    /// Fraction of lookups served from the cache (0 when idle).
    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  /// `byte_budget` caps the resident ApproxBytes total. 0 disables
  /// residency entirely (every lookup misses; pins still work).
  explicit LabelCache(size_t byte_budget);

  /// Moving is a structural operation: it must be serialized with every
  /// other access, stats reads included (the counters move too).
  LabelCache(LabelCache&& other) noexcept;
  LabelCache& operator=(LabelCache&&) = delete;
  LabelCache(const LabelCache&) = delete;
  LabelCache& operator=(const LabelCache&) = delete;

  /// Key of a single-label (copy route) entry. Bit 63 clear.
  static uint64_t KeyFor(Side side, NodeId node) {
    return (static_cast<uint64_t>(node) << 1) |
           static_cast<uint64_t>(side);
  }

  /// Key of a whole-block entry: the backend's block handle, tagged so
  /// it can never collide with a KeyFor key.
  static uint64_t BlockKeyFor(uint64_t handle) {
    return handle | (uint64_t{1} << 63);
  }

  /// Returns a pin on the cached block and marks it most-recently-
  /// used; null on a miss. Owner-thread only.
  LabelBlock Get(uint64_t key);

  /// Row-memo fast path for the block route: a hit returns a pin on
  /// the block that holds the row and writes the row's index within it
  /// — no directory search, no block lookup. The memo holds WEAK
  /// references: it charges nothing against the byte budget and never
  /// keeps an evicted block alive; once the block dies the stale memo
  /// entry is dropped and the lookup misses (the caller then re-takes
  /// the block route, which re-memoizes). A memo hit counts as a cache
  /// hit; a memo miss counts nothing — the block route's Get/decode
  /// accounts for it. Owner-thread only.
  LabelBlock GetRow(uint64_t row_key, uint32_t* row);

  /// Remembers that `row_key`'s label is row `row` of `block`.
  /// Owner-thread only.
  void MemoRow(uint64_t row_key, const LabelBlock& block, uint32_t row);

  /// Inserts (or overwrites) an entry, then evicts least-recently-used
  /// entries until the byte budget holds. Returns a pin on `block`
  /// (valid even if the entry was immediately evicted).
  /// Owner-thread only.
  LabelBlock Put(uint64_t key, LabelBlock block);

  /// Accounts one block decode of `nanos` performed by the owning
  /// engine (the cache itself never decodes). Owner-thread only.
  void RecordDecode(uint64_t nanos);

  /// Owner-thread only.
  void Clear();

  /// Current entry count / resident bytes. Safe from any thread
  /// (atomic mirrors maintained by the structural operations).
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  size_t bytes_resident() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  size_t byte_budget() const { return byte_budget_; }

  // ---- lifetime counters (across all batches served) ----
  //
  // Safe from any thread; see the ownership rule above.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t blocks_decoded() const {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }
  uint64_t decode_nanos() const {
    return decode_nanos_.load(std::memory_order_relaxed);
  }

  /// All counters in one struct (each read individually relaxed).
  Stats StatsSnapshot() const {
    return Stats{hits(),           misses(),       evictions(),
                 size(),           bytes_resident(), byte_budget(),
                 blocks_decoded(), decode_nanos()};
  }

 private:
  struct Entry {
    LabelBlock block;
    size_t bytes;     // ApproxBytes at insert, charged until eviction
    uint64_t used;    // generation of the last Get/Put touch
  };

  /// A weak row -> (block, row index) shortcut; see GetRow.
  struct RowRef {
    std::weak_ptr<const storage::DecodedBlock> block;
    uint32_t row;
  };

  /// Drops entries in ascending `used` order until the budget holds.
  void EvictUntilWithinBudget();

  std::unordered_map<uint64_t, Entry> map_;
  std::unordered_map<uint64_t, RowRef> rows_;
  size_t byte_budget_;
  size_t resident_ = 0;   // authoritative; bytes_ mirrors it
  uint64_t clock_ = 0;    // bumped on every touch; never wraps in practice
  std::atomic<size_t> size_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> blocks_decoded_{0};
  std::atomic<uint64_t> decode_nanos_{0};
};

}  // namespace hopi::engine
