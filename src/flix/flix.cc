#include "flix/flix.h"

#include <cassert>
#include <map>

namespace hopi::flix {

namespace {

using collection::Collection;
using collection::DocId;

/// Weakly connected components of the document-level graph, restricted to
/// live documents. Returns component id per document (UINT32_MAX = dead).
std::vector<uint32_t> DocComponents(const Collection& c,
                                    uint32_t* num_components) {
  const Digraph& gd = c.DocumentGraph();
  std::vector<uint32_t> comp(c.NumDocuments(), UINT32_MAX);
  uint32_t next = 0;
  std::vector<NodeId> stack;
  for (DocId seed = 0; seed < c.NumDocuments(); ++seed) {
    if (!c.IsLive(seed) || comp[seed] != UINT32_MAX) continue;
    uint32_t id = next++;
    comp[seed] = id;
    stack.push_back(seed);
    while (!stack.empty()) {
      NodeId d = stack.back();
      stack.pop_back();
      auto visit = [&](NodeId nb) {
        if (c.IsLive(nb) && comp[nb] == UINT32_MAX) {
          comp[nb] = id;
          stack.push_back(nb);
        }
      };
      for (NodeId nb : gd.OutNeighbors(d)) visit(nb);
      for (NodeId nb : gd.InNeighbors(d)) visit(nb);
    }
  }
  *num_components = next;
  return comp;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kTree:
      return "tree";
    case Tier::kClosure:
      return "closure";
    case Tier::kHopi:
      return "hopi";
  }
  return "?";
}

Result<FlixIndex> FlixIndex::Build(const Collection& collection,
                                   const FlixOptions& options) {
  FlixIndex index;
  index.collection_ = &collection;
  index.with_distance_ = options.cover.with_distance;
  index.tree_labels_ = std::make_unique<collection::TreeLabels>(collection);
  index.tier_of_.assign(collection.NumElements(), Tier::kTree);
  index.slot_of_.assign(collection.NumElements(), 0);

  uint32_t num_components = 0;
  std::vector<uint32_t> comp = DocComponents(collection, &num_components);
  index.stats_.components = num_components;

  // Documents per component, plus whether any member has intra links
  // (intra links break pure tree-ness, disqualifying the TREE tier).
  std::vector<std::vector<DocId>> docs_by_comp(num_components);
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    if (comp[d] != UINT32_MAX) docs_by_comp[comp[d]].push_back(d);
  }
  std::vector<bool> has_intra(num_components, false);
  for (const collection::Link& l : collection.Links()) {
    DocId ds = collection.DocOf(l.source);
    if (ds == collection.DocOf(l.target) && comp[ds] != UINT32_MAX) {
      has_intra[comp[ds]] = true;
    }
  }

  for (uint32_t cc = 0; cc < num_components; ++cc) {
    const std::vector<DocId>& docs = docs_by_comp[cc];
    assert(!docs.empty());
    if (docs.size() == 1 && !has_intra[cc]) {
      // Tier TREE: interval labels (already built globally).
      ++index.stats_.tree_docs;
      for (NodeId e : collection.ElementsOf(docs[0])) {
        index.tier_of_[e] = Tier::kTree;
      }
      continue;
    }
    std::vector<NodeId> elements;
    for (DocId d : docs) {
      const auto& els = collection.ElementsOf(d);
      elements.insert(elements.end(), els.begin(), els.end());
    }
    InducedSubgraph sub =
        BuildInducedSubgraph(collection.ElementGraph(), elements);

    // Probe the closure budget; OutOfBudget or a closure denser than a
    // cover would be => HOPI tier.
    auto tc = TransitiveClosure::Build(sub.graph,
                                       options.closure_tier_max_connections);
    bool closure_compact =
        tc.ok() && static_cast<double>(tc->NumConnections()) <=
                       options.closure_vs_cover_factor *
                           static_cast<double>(elements.size());
    if (tc.ok() && closure_compact) {
      // Tier CLOSURE. Distances are cheap at this size, so the tier is
      // always distance-exact.
      uint32_t slot = static_cast<uint32_t>(index.closure_components_.size());
      for (NodeId e : elements) {
        index.tier_of_[e] = Tier::kClosure;
        index.slot_of_[e] = slot;
      }
      index.stats_.closure_connections += tc->NumConnections();
      ++index.stats_.closure_components;
      DistanceClosure dc = DistanceClosure::Build(sub.graph);
      index.closure_components_.push_back(
          {std::move(sub), std::move(dc)});
      continue;
    }
    if (!tc.ok() && !tc.status().IsOutOfBudget()) return tc.status();

    // Tier HOPI.
    auto cover = twohop::BuildCover(sub.graph, options.cover);
    if (!cover.ok()) return cover.status();
    uint32_t slot = static_cast<uint32_t>(index.hopi_components_.size());
    for (NodeId e : elements) {
      index.tier_of_[e] = Tier::kHopi;
      index.slot_of_[e] = slot;
    }
    index.stats_.hopi_cover_entries += cover->Size();
    ++index.stats_.hopi_components;
    index.hopi_components_.push_back(
        {std::move(sub), std::move(cover).value()});
  }
  return index;
}

Tier FlixIndex::TierOf(NodeId element) const { return tier_of_[element]; }

bool FlixIndex::IsReachable(NodeId u, NodeId v) const {
  if (u == v) return true;
  Tier tier = tier_of_[u];
  if (tier != tier_of_[v]) return false;
  switch (tier) {
    case Tier::kTree:
      return tree_labels_->IsAncestorOrSelf(u, v);
    case Tier::kClosure: {
      if (slot_of_[u] != slot_of_[v]) return false;
      const ClosureComponent& c = closure_components_[slot_of_[u]];
      return c.closure.Dist(c.sub.Local(u), c.sub.Local(v)).has_value();
    }
    case Tier::kHopi: {
      if (slot_of_[u] != slot_of_[v]) return false;
      const HopiComponent& c = hopi_components_[slot_of_[u]];
      return c.cover.IsConnected(c.sub.Local(u), c.sub.Local(v));
    }
  }
  return false;
}

std::optional<uint32_t> FlixIndex::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  Tier tier = tier_of_[u];
  if (tier != tier_of_[v]) return std::nullopt;
  switch (tier) {
    case Tier::kTree: {
      if (!tree_labels_->IsAncestorOrSelf(u, v)) return std::nullopt;
      // Tree distance = depth difference.
      return tree_labels_->AncestorCount(v) - tree_labels_->AncestorCount(u);
    }
    case Tier::kClosure: {
      if (slot_of_[u] != slot_of_[v]) return std::nullopt;
      const ClosureComponent& c = closure_components_[slot_of_[u]];
      return c.closure.Dist(c.sub.Local(u), c.sub.Local(v));
    }
    case Tier::kHopi: {
      if (slot_of_[u] != slot_of_[v]) return std::nullopt;
      const HopiComponent& c = hopi_components_[slot_of_[u]];
      return c.cover.Distance(c.sub.Local(u), c.sub.Local(v));
    }
  }
  return std::nullopt;
}

}  // namespace hopi::flix
