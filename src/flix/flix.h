// FliX-style flexible connection indexing (paper reference [25] and the
// paper's stated future work: "We will employ HOPI in the FliX framework
// and examine for which (sub-)collections HOPI is best suited and when
// other indexes perform better").
//
// The framework splits the collection into sub-collections — the weakly
// connected components of the document-level graph — and picks the
// cheapest index per component:
//
//   tier TREE     a single document with no links at all: pre/postorder
//                 interval labels answer reachability and distance in
//                 O(1) with O(n) space (no cover needed — this is the
//                 INEX case, where HOPI pays ~2 entries/node for nothing),
//   tier CLOSURE  a small linked component: the materialized transitive
//                 closure is compact below a connection threshold and has
//                 the fastest lookups,
//   tier HOPI     everything else: the 2-hop cover.
//
// Queries route by component; cross-component pairs are never connected
// by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "collection/collection.h"
#include "collection/tree_labels.h"
#include "graph/closure.h"
#include "graph/subgraph.h"
#include "twohop/builder.h"
#include "util/result.h"

namespace hopi::flix {

enum class Tier : uint8_t { kTree = 0, kClosure = 1, kHopi = 2 };

const char* TierName(Tier tier);

struct FlixOptions {
  /// Components whose transitive closure has at most this many
  /// connections are candidates for the materialized-closure tier.
  uint64_t closure_tier_max_connections = 2000;
  /// The closure tier is only chosen when it is actually compact:
  /// connections <= factor * elements (otherwise a 2-hop cover stores
  /// less and the component goes to the HOPI tier).
  double closure_vs_cover_factor = 4.0;
  /// Options forwarded to the 2-hop cover builds of HOPI-tier components.
  twohop::CoverBuildOptions cover;
};

struct FlixStats {
  size_t components = 0;
  size_t tree_docs = 0;       // documents served by interval labels
  size_t closure_components = 0;
  size_t hopi_components = 0;
  uint64_t closure_connections = 0;  // stored by the closure tier
  uint64_t hopi_cover_entries = 0;   // stored by the HOPI tier
};

/// The hybrid index. Read-only once built (FliX delegates maintenance to
/// the per-tier structures; only the HOPI tier supports it, so mutable
/// workloads should use HopiIndex directly).
class FlixIndex {
 public:
  /// Builds the hybrid index over the collection's live documents.
  static Result<FlixIndex> Build(const collection::Collection& collection,
                                 const FlixOptions& options = {});

  /// True iff u ->* v in the element-level graph (reflexive).
  bool IsReachable(NodeId u, NodeId v) const;

  /// Shortest connection length, or nullopt when unconnected. Exact in
  /// every tier when options.cover.with_distance was set (the tree and
  /// closure tiers are always exact).
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const;

  /// Which tier serves this element's component.
  Tier TierOf(NodeId element) const;

  const FlixStats& stats() const { return stats_; }

 private:
  FlixIndex() = default;

  struct ClosureComponent {
    InducedSubgraph sub;
    DistanceClosure closure;
  };
  struct HopiComponent {
    InducedSubgraph sub;
    twohop::TwoHopCover cover;
  };

  const collection::Collection* collection_ = nullptr;
  std::unique_ptr<collection::TreeLabels> tree_labels_;
  // element -> (tier, component slot); slot indexes one of the vectors.
  std::vector<Tier> tier_of_;
  std::vector<uint32_t> slot_of_;
  std::vector<ClosureComponent> closure_components_;
  std::vector<HopiComponent> hopi_components_;
  bool with_distance_ = false;
  FlixStats stats_;
};

}  // namespace hopi::flix
